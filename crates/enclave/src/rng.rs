//! In-enclave randomness.
//!
//! ORAM leaf reassignment and dummy-access targets need unpredictable (to
//! the adversary) randomness that lives inside the enclave. For experiment
//! reproducibility every source is seedable: the generator is a
//! self-contained xoshiro256** (Blackman & Vigna), seeded through
//! splitmix64, so the whole workspace is dependency-free. The simulation
//! only needs statistical quality plus determinism under a seed; a real SGX
//! deployment would swap in RDRAND-backed entropy behind the same API.

/// Deterministic, seedable RNG representing the enclave's entropy source.
pub struct EnclaveRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl EnclaveRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
        }
    }

    /// Uniform `u64` (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let out = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut n = [s0, s1, s2, s3];
        n[2] ^= n[0];
        n[3] ^= n[1];
        n[1] ^= n[2];
        n[0] ^= n[3];
        n[2] ^= t;
        n[3] = n[3].rotate_left(45);
        self.state = n;
        out
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses rejection sampling (Lemire-style threshold) so the output is
    /// exactly uniform — ORAM leaf choice must not be biased.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let (lo, hi) = {
                let wide = (x as u128) * (bound as u128);
                (wide as u64, (wide >> 64) as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Fills a byte slice with random bytes (key/seed generation).
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform integer in `[lo, hi)` — the sampler the workspace's
    /// property tests share (workload generators use the richer
    /// range-typed wrapper in `oblidb-workloads`).
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as i64
    }

    /// A fresh buffer of `len` uniform random bytes.
    pub fn random_bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill(&mut v);
        v
    }

    /// Derives an independent child RNG (e.g. one per ORAM instance).
    pub fn fork(&mut self) -> EnclaveRng {
        EnclaveRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = EnclaveRng::seed_from_u64(42);
        let mut b = EnclaveRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = EnclaveRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = EnclaveRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn forks_are_independent() {
        let mut parent = EnclaveRng::seed_from_u64(3);
        let mut a = parent.fork();
        let mut b = parent.fork();
        // Extremely unlikely to collide if independent.
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_changes_buffer() {
        let mut r = EnclaveRng::seed_from_u64(9);
        let mut buf = [0u8; 32];
        r.fill(&mut buf);
        assert_ne!(buf, [0u8; 32]);
    }
}
