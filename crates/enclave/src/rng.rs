//! In-enclave randomness.
//!
//! ORAM leaf reassignment and dummy-access targets need unpredictable (to
//! the adversary) randomness that lives inside the enclave. For experiment
//! reproducibility every source is seedable.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic, seedable RNG representing the enclave's entropy source.
pub struct EnclaveRng {
    rng: StdRng,
}

impl EnclaveRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.random()
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.random_range(0..bound)
    }

    /// Fills a byte slice with random bytes (key/seed generation).
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.rng.fill(buf);
    }

    /// Derives an independent child RNG (e.g. one per ORAM instance).
    pub fn fork(&mut self) -> EnclaveRng {
        EnclaveRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = EnclaveRng::seed_from_u64(42);
        let mut b = EnclaveRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = EnclaveRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn forks_are_independent() {
        let mut parent = EnclaveRng::seed_from_u64(3);
        let mut a = parent.fork();
        let mut b = parent.fork();
        // Extremely unlikely to collide if independent.
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_changes_buffer() {
        let mut r = EnclaveRng::seed_from_u64(9);
        let mut buf = [0u8; 32];
        r.fill(&mut buf);
        assert_ne!(buf, [0u8; 32]);
    }
}
