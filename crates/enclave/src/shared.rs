//! One untrusted store, many concurrent enclave sessions.
//!
//! The serving front-end runs many sessions against a single substrate.
//! [`SharedMemory`] owns the store behind a mutex; [`SessionMemory`] is a
//! per-session [`EnclaveMemory`] handle that forwards every operation to
//! the shared store under the lock while keeping **per-session** stats,
//! traces, and crossing pricing:
//!
//! * Each forwarded call holds the store lock only for the memory
//!   operation itself. The simulated crossing price (the OCALL stall) is
//!   paid by the *session's* thread **outside** the lock — exactly like
//!   real SGX, where each enclave thread waits out its own OCALL. Stalls
//!   from different sessions therefore overlap, which is the regime where
//!   inter-query concurrency pays (the store op itself is brief).
//! * Session stats and trace events are synthesized from the shared
//!   store's own counters, diffed under the lock, so they are
//!   bit-identical to what a single-owner substrate would have recorded
//!   for the same calls — including the failure contracts (failed single
//!   accesses still trace; batches trace the prefix up to and including
//!   the failing index; `UnknownRegion` and ragged-buffer validation
//!   precede any event; a crossing is counted only once a block
//!   validates).
//! * Price the *inner* store at zero and the [`SharedMemory`] at the
//!   boundary cost: an inner-store price would be paid while holding the
//!   lock and serialize the stalls you are trying to overlap.
//!
//! Region-id allocation stays globally ordered by the store lock, so any
//! serial schedule of sessions allocates exactly the ids the single-owner
//! engine would — the property the concurrent conformance suite pins.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::host::{AccessEvent, AccessKind, CrossingCost, HostError, HostStats, RegionId, Trace};
use crate::memory::EnclaveMemory;

#[derive(Debug)]
struct Shared<M> {
    store: Mutex<M>,
    crossing_spins: AtomicU32,
    crossing_stall: AtomicU64,
    /// Stall nanoseconds paid by *sessions* (the inner store is unpriced),
    /// aggregated across every session for server-level reporting.
    session_stall_nanos: AtomicU64,
    /// Sessions ever created (server-level counter).
    sessions: AtomicU64,
}

/// A `Send + Sync` handle to one substrate shared by many sessions.
///
/// Cloning is cheap (an `Arc`); [`SharedMemory::session`] mints the
/// per-session [`EnclaveMemory`] handles the engine runs over.
#[derive(Debug)]
pub struct SharedMemory<M> {
    inner: Arc<Shared<M>>,
}

impl<M> Clone for SharedMemory<M> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<M: EnclaveMemory> SharedMemory<M> {
    /// Wraps `store` for shared use. The store's own crossing price should
    /// be zero (see the module docs); price the boundary with
    /// [`SharedMemory::set_crossing_stall`] /
    /// [`SharedMemory::set_crossing_cost`] instead.
    pub fn new(store: M) -> Self {
        Self {
            inner: Arc::new(Shared {
                store: Mutex::new(store),
                crossing_spins: AtomicU32::new(0),
                crossing_stall: AtomicU64::new(0),
                session_stall_nanos: AtomicU64::new(0),
                sessions: AtomicU64::new(0),
            }),
        }
    }

    /// Sets the CPU-burning component of the per-crossing price every
    /// session pays (see [`CrossingCost::spins`]). Takes effect on the
    /// next crossing of every session.
    pub fn set_crossing_cost(&self, spins: u32) {
        self.inner.crossing_spins.store(spins, Ordering::Relaxed);
    }

    /// Sets the stall component of the per-crossing price every session
    /// pays (see [`CrossingCost::stall_nanos`]). Paid outside the store
    /// lock, so concurrent sessions' stalls overlap.
    pub fn set_crossing_stall(&self, nanos: u64) {
        self.inner.crossing_stall.store(nanos, Ordering::Relaxed);
    }

    /// Mints a new session handle over the shared store.
    pub fn session(&self) -> SessionMemory<M> {
        self.inner.sessions.fetch_add(1, Ordering::Relaxed);
        let retains = lock(&self.inner.store).retains_payloads();
        SessionMemory {
            shared: Arc::clone(&self.inner),
            stats: HostStats::default(),
            trace: None,
            scratch: Vec::new(),
            retains,
        }
    }

    /// Number of sessions ever minted.
    pub fn sessions(&self) -> u64 {
        self.inner.sessions.load(Ordering::Relaxed)
    }

    /// Store-level aggregate stats: the inner substrate's own counters
    /// (which see every session's traffic), with the sessions' paid stall
    /// time folded into `stall_nanos`. This is the server-level view;
    /// per-session views come from each handle's
    /// [`EnclaveMemory::stats`].
    pub fn store_stats(&self) -> HostStats {
        let mut s = lock(&self.inner.store).stats();
        s.stall_nanos += self.inner.session_stall_nanos.load(Ordering::Relaxed);
        s
    }

    /// Runs `f` with exclusive access to the raw store — the admin escape
    /// hatch (persistence attach, adversary APIs in tests). Keep it brief:
    /// every session blocks while `f` runs.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut M) -> R) -> R {
        f(&mut lock(&self.inner.store))
    }
}

/// Keeps serving even if a session thread panicked mid-operation: sealed
/// blocks are self-authenticating, so a torn logical state surfaces as a
/// typed error, never as silent corruption.
fn lock<M>(m: &Mutex<M>) -> MutexGuard<'_, M> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One session's view of a [`SharedMemory`] store.
///
/// Implements [`EnclaveMemory`] with the shared store as the substrate;
/// stats and traces are per-session and match what a single-owner
/// substrate would record for the same calls (batch failure prefixes
/// included). `stats().stall_nanos` is the stall *this* session paid.
#[derive(Debug)]
pub struct SessionMemory<M> {
    shared: Arc<Shared<M>>,
    stats: HostStats,
    trace: Option<Vec<AccessEvent>>,
    scratch: Vec<u8>,
    retains: bool,
}

impl<M: EnclaveMemory> SessionMemory<M> {
    /// A sibling handle over the same shared store (fresh stats/trace).
    pub fn sibling(&self) -> SessionMemory<M> {
        self.shared_handle().session()
    }

    /// The owning [`SharedMemory`] handle.
    pub fn shared_handle(&self) -> SharedMemory<M> {
        SharedMemory { inner: Arc::clone(&self.shared) }
    }

    fn cost(&self) -> CrossingCost {
        CrossingCost {
            spins: self.shared.crossing_spins.load(Ordering::Relaxed),
            stall_nanos: self.shared.crossing_stall.load(Ordering::Relaxed),
        }
    }

    /// Folds one forwarded call's inner-store counter delta into the
    /// session stats, then pays the session's crossing price once per
    /// crossing the inner store counted — after the lock is gone, so
    /// concurrent sessions stall in parallel.
    fn account(&mut self, delta: HostStats, cost: CrossingCost) {
        self.stats.reads += delta.reads;
        self.stats.writes += delta.writes;
        self.stats.bytes_read += delta.bytes_read;
        self.stats.bytes_written += delta.bytes_written;
        self.stats.crossings += delta.crossings;
        let stall = delta.crossings * cost.stall_nanos;
        self.stats.stall_nanos += stall;
        if stall > 0 {
            self.shared.session_stall_nanos.fetch_add(stall, Ordering::Relaxed);
        }
        for _ in 0..delta.crossings {
            cost.pay();
        }
    }

    fn record(&mut self, region: RegionId, index: u64, kind: AccessKind) {
        if let Some(t) = &mut self.trace {
            t.push(AccessEvent { region, index, kind });
        }
    }

    /// Synthesizes the per-block trace of one batched call from its
    /// outcome, matching the single-owner contract: all events on success;
    /// none when validation failed before any block (`UnknownRegion`,
    /// ragged buffers); the successful prefix plus the failing index on a
    /// mid-batch fault. `successes` is the inner store's per-block counter
    /// delta — exactly how many blocks validated before the fault.
    fn record_batch(
        &mut self,
        region: RegionId,
        indices: impl Iterator<Item = u64>,
        kind: AccessKind,
        successes: u64,
        outcome: &Result<(), HostError>,
    ) {
        if self.trace.is_none() {
            return;
        }
        let events = match outcome {
            Ok(()) => usize::MAX,
            Err(HostError::OutOfBounds { .. }) | Err(HostError::EmptyBlock(..)) => {
                successes as usize + 1
            }
            // Validation errors precede any event; I/O faults surface the
            // successful prefix (the blocks the adversary saw transfer).
            Err(HostError::UnknownRegion(_)) | Err(HostError::BlockSizeMismatch { .. }) => 0,
            Err(HostError::Io { .. }) => successes as usize,
        };
        if let Some(t) = &mut self.trace {
            t.extend(indices.take(events).map(|index| AccessEvent { region, index, kind }));
        }
    }
}

impl<M: EnclaveMemory> EnclaveMemory for SessionMemory<M> {
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> Result<RegionId, HostError> {
        lock(&self.shared.store).alloc_region(blocks, block_size)
    }

    fn free_region(&mut self, region: RegionId) -> Result<(), HostError> {
        lock(&self.shared.store).free_region(region)
    }

    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        lock(&self.shared.store).grow_region(region, new_blocks)
    }

    fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        lock(&self.shared.store).region_len(region)
    }

    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        lock(&self.shared.store).region_block_size(region)
    }

    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        // Single accesses trace unconditionally, even when they fail.
        self.record(region, index, AccessKind::Read);
        let cost = self.cost();
        let (outcome, delta) = {
            let mut store = lock(&self.shared.store);
            let before = store.stats();
            let outcome = store.read(region, index).map(|block| {
                self.scratch.clear();
                self.scratch.extend_from_slice(block);
            });
            (outcome, store.stats() - before)
        };
        // Fold the inner delta in even on failure: a failed access leaves
        // the inner counters alone, a mid-batch fault leaves the
        // successful prefix — either way the delta IS the single-owner
        // behavior.
        self.account(delta, cost);
        outcome?;
        Ok(&self.scratch[..])
    }

    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        self.record(region, index, AccessKind::Write);
        let cost = self.cost();
        let (outcome, delta) = {
            let mut store = lock(&self.shared.store);
            let before = store.stats();
            let outcome = store.write(region, index, data);
            (outcome, store.stats() - before)
        };
        self.account(delta, cost);
        outcome
    }

    fn read_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        let cost = self.cost();
        let (outcome, delta) = {
            let mut store = lock(&self.shared.store);
            let before = store.stats();
            let outcome = store.read_blocks(region, start, count, out);
            (outcome, store.stats() - before)
        };
        self.record_batch(
            region,
            start..start + count as u64,
            AccessKind::Read,
            delta.reads,
            &outcome,
        );
        self.account(delta, cost);
        outcome
    }

    fn read_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        let cost = self.cost();
        let (outcome, delta) = {
            let mut store = lock(&self.shared.store);
            let before = store.stats();
            let outcome = store.read_blocks_at(region, indices, out);
            (outcome, store.stats() - before)
        };
        self.record_batch(region, indices.iter().copied(), AccessKind::Read, delta.reads, &outcome);
        self.account(delta, cost);
        outcome
    }

    fn write_blocks(&mut self, region: RegionId, start: u64, data: &[u8]) -> Result<(), HostError> {
        let cost = self.cost();
        let (outcome, delta, count) = {
            let mut store = lock(&self.shared.store);
            let before = store.stats();
            let count = store
                .region_block_size(region)
                .ok()
                .and_then(|bs| data.len().checked_div(bs))
                .unwrap_or(0);
            let outcome = store.write_blocks(region, start, data);
            (outcome, store.stats() - before, count)
        };
        self.record_batch(
            region,
            start..start + count as u64,
            AccessKind::Write,
            delta.writes,
            &outcome,
        );
        self.account(delta, cost);
        outcome
    }

    fn write_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        data: &[u8],
    ) -> Result<(), HostError> {
        let cost = self.cost();
        let (outcome, delta) = {
            let mut store = lock(&self.shared.store);
            let before = store.stats();
            let outcome = store.write_blocks_at(region, indices, data);
            (outcome, store.stats() - before)
        };
        self.record_batch(
            region,
            indices.iter().copied(),
            AccessKind::Write,
            delta.writes,
            &outcome,
        );
        self.account(delta, cost);
        outcome
    }

    fn start_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    fn take_trace(&mut self) -> Trace {
        Trace(self.trace.take().unwrap_or_default())
    }

    fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    fn stats(&self) -> HostStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        // Per-session counters only; the crossing price is configuration
        // on the shared handle and the store-level aggregate is
        // [`SharedMemory::store_stats`].
        self.stats = HostStats::default();
    }

    fn retains_payloads(&self) -> bool {
        self.retains
    }

    fn sync(&mut self) -> Result<(), HostError> {
        lock(&self.shared.store).sync()
    }

    fn sync_region(&mut self, region: RegionId) -> Result<(), HostError> {
        lock(&self.shared.store).sync_region(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Host;

    /// Drives the same operation sequence (success + every error class)
    /// over a raw `Host` and a `SessionMemory<Host>`, asserting traces and
    /// stats are bit-identical — the parity the concurrent engine builds
    /// on.
    fn drive<M: EnclaveMemory>(m: &mut M) -> (Trace, HostStats) {
        m.start_trace();
        let r = m.alloc_region(8, 4).unwrap();
        let ghost = RegionId(999);

        // Single-op success + every single-op failure (all still trace).
        m.write(r, 0, &[1; 4]).unwrap();
        assert_eq!(m.read(r, 0).unwrap(), &[1; 4]);
        assert!(matches!(m.read(ghost, 0), Err(HostError::UnknownRegion(_))));
        assert!(matches!(m.write(r, 0, &[0; 3]), Err(HostError::BlockSizeMismatch { .. })));
        assert!(matches!(m.write(r, 50, &[0; 4]), Err(HostError::OutOfBounds { .. })));
        assert!(matches!(m.read(r, 3), Err(HostError::EmptyBlock(..))));

        // Batched success.
        m.write_blocks(r, 2, &[7; 16]).unwrap();
        let mut out = Vec::new();
        m.read_blocks(r, 2, 4, &mut out).unwrap();
        assert_eq!(out, [7; 16]);
        m.write_blocks_at(r, &[7, 0], &[9; 8]).unwrap();
        m.read_blocks_at(r, &[7, 2], &mut out).unwrap();

        // Batched failures: validation (no events) vs mid-batch (prefix).
        assert!(matches!(m.read_blocks(ghost, 0, 2, &mut out), Err(HostError::UnknownRegion(_))));
        assert!(matches!(m.write_blocks(r, 0, &[0; 3]), Err(HostError::BlockSizeMismatch { .. })));
        assert!(matches!(
            m.write_blocks_at(r, &[0, 1], &[0; 4]),
            Err(HostError::BlockSizeMismatch { .. })
        ));
        // Blocks 2..=5 and 0,7 are written; 6 is empty: fails mid-batch.
        assert!(matches!(m.read_blocks(r, 4, 4, &mut out), Err(HostError::EmptyBlock(_, 6))));
        // Gather with the fault in the middle.
        assert!(matches!(
            m.read_blocks_at(r, &[0, 6, 2], &mut out),
            Err(HostError::EmptyBlock(_, 6))
        ));
        // Out of bounds mid-batch on the write side (writes 6 and 7 first).
        assert!(matches!(
            m.write_blocks(r, 6, &[0; 16]),
            Err(HostError::OutOfBounds { index: 8, .. })
        ));

        // Zero-length batches: no events, no crossings.
        m.read_blocks(r, 0, 0, &mut out).unwrap();
        m.write_blocks(r, 0, &[]).unwrap();

        m.grow_region(r, 12).unwrap();
        assert_eq!(m.region_len(r).unwrap(), 12);
        assert_eq!(m.region_block_size(r).unwrap(), 4);
        m.free_region(r).unwrap();
        (m.take_trace(), m.stats())
    }

    #[test]
    fn session_matches_host_bit_for_bit() {
        let mut host = Host::new();
        let (trace_h, stats_h) = drive(&mut host);
        let shared = SharedMemory::new(Host::new());
        let mut session = shared.session();
        let (trace_s, stats_s) = drive(&mut session);
        assert_eq!(trace_h, trace_s, "session trace must equal the single-owner trace");
        assert_eq!(stats_h, stats_s, "session stats must equal the single-owner stats");
        // The store-level view saw the same traffic.
        let store = shared.store_stats();
        assert_eq!(store.reads, stats_h.reads);
        assert_eq!(store.writes, stats_h.writes);
        assert_eq!(store.crossings, stats_h.crossings);
    }

    #[test]
    fn sessions_keep_independent_stats_and_traces() {
        let shared = SharedMemory::new(Host::new());
        let mut a = shared.session();
        let mut b = a.sibling();
        let r = a.alloc_region(4, 4).unwrap();
        a.start_trace();
        a.write(r, 0, &[1; 4]).unwrap();
        b.start_trace();
        b.read(r, 0).unwrap();
        assert_eq!(a.take_trace().len(), 1);
        assert_eq!(b.take_trace().len(), 1);
        assert_eq!((a.stats().writes, a.stats().reads), (1, 0));
        assert_eq!((b.stats().writes, b.stats().reads), (0, 1));
        // Store-level stats aggregate both sessions.
        let store = shared.store_stats();
        assert_eq!((store.writes, store.reads), (1, 1));
        assert_eq!(shared.sessions(), 2);
    }

    #[test]
    fn concurrent_sessions_allocate_unique_regions() {
        let shared = SharedMemory::new(Host::new());
        let mut ids = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let shared = shared.clone();
                    s.spawn(move || {
                        let mut m = shared.session();
                        let mut mine = Vec::new();
                        for _ in 0..50 {
                            let r = m.alloc_region(2, 4).unwrap();
                            m.write(r, 0, &[r.0 as u8; 4]).unwrap();
                            assert_eq!(m.read(r, 0).unwrap(), &[r.0 as u8; 4]);
                            mine.push(r.0);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400, "every session got globally unique region ids");
    }

    #[test]
    fn session_stall_is_priced_and_aggregated() {
        let shared = SharedMemory::new(Host::new());
        shared.set_crossing_stall(1);
        let mut m = shared.session();
        let r = m.alloc_region(2, 4).unwrap();
        m.write_blocks(r, 0, &[0; 8]).unwrap();
        let mut out = Vec::new();
        m.read_blocks(r, 0, 2, &mut out).unwrap();
        assert_eq!(m.stats().crossings, 2);
        assert_eq!(m.stats().stall_nanos, 2);
        assert_eq!(shared.store_stats().stall_nanos, 2, "sessions' stall folds into store view");
    }
}
