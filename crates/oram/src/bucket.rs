//! Bucket (de)serialization for the ORAM tree.
//!
//! Each slot stores `(addr, leaf, payload)`. Carrying the assigned leaf
//! inside the (encrypted) slot lets eviction replace blocks without
//! consulting the position map for every stash entry — only the *target*
//! address's position is ever looked up, which keeps the number of
//! position-map accesses per operation constant (important when the map is
//! itself recursive).

/// Address marking an empty (dummy) slot.
pub const DUMMY_ADDR: u64 = u64::MAX;

/// One slot of a bucket: a logical address, its assigned leaf, and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slot {
    /// Logical block address, or [`DUMMY_ADDR`].
    pub addr: u64,
    /// The leaf this block is currently mapped to.
    pub leaf: u32,
    /// Fixed-length payload.
    pub data: Vec<u8>,
}

impl Slot {
    /// A dummy slot of the given payload length.
    pub fn dummy(payload_len: usize) -> Self {
        Slot { addr: DUMMY_ADDR, leaf: 0, data: vec![0u8; payload_len] }
    }

    /// Whether the slot holds a real block.
    pub fn is_real(&self) -> bool {
        self.addr != DUMMY_ADDR
    }
}

/// Per-slot serialized header size (addr + leaf).
const SLOT_HEADER: usize = 8 + 4;

/// A fixed-capacity bucket of Z slots, serialized into one sealed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// The slots; always exactly Z entries.
    pub slots: Vec<Slot>,
}

impl Bucket {
    /// Serialized size of a bucket with `z` slots of `payload_len` payloads.
    pub fn serialized_len(z: usize, payload_len: usize) -> usize {
        z * (SLOT_HEADER + payload_len)
    }

    /// An all-dummy bucket.
    pub fn empty(z: usize, payload_len: usize) -> Self {
        Bucket { slots: vec![Slot::dummy(payload_len); z] }
    }

    /// Serializes the bucket into `out` (which must have the exact size).
    pub fn serialize_into(&self, payload_len: usize, out: &mut [u8]) {
        debug_assert_eq!(out.len(), Self::serialized_len(self.slots.len(), payload_len));
        let mut off = 0;
        for slot in &self.slots {
            // Stored as addr+1 so an all-zero (freshly sealed) block parses
            // as an all-dummy bucket.
            let tagged = if slot.is_real() { slot.addr + 1 } else { 0 };
            out[off..off + 8].copy_from_slice(&tagged.to_le_bytes());
            off += 8;
            out[off..off + 4].copy_from_slice(&slot.leaf.to_le_bytes());
            off += 4;
            out[off..off + payload_len].copy_from_slice(&slot.data);
            off += payload_len;
        }
    }

    /// Parses a bucket of `z` slots from sealed-block plaintext.
    pub fn deserialize(bytes: &[u8], z: usize, payload_len: usize) -> Self {
        debug_assert_eq!(bytes.len(), Self::serialized_len(z, payload_len));
        let mut slots = Vec::with_capacity(z);
        let mut off = 0;
        for _ in 0..z {
            let tagged = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            let addr = if tagged == 0 { DUMMY_ADDR } else { tagged - 1 };
            off += 8;
            let leaf = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            off += 4;
            let data = bytes[off..off + payload_len].to_vec();
            off += payload_len;
            slots.push(Slot { addr, leaf, data });
        }
        Bucket { slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = Bucket::empty(4, 3);
        b.slots[1] = Slot { addr: 7, leaf: 5, data: vec![1, 2, 3] };
        b.slots[3] = Slot { addr: 0, leaf: 1, data: vec![9, 9, 9] };
        let mut buf = vec![0u8; Bucket::serialized_len(4, 3)];
        b.serialize_into(3, &mut buf);
        let parsed = Bucket::deserialize(&buf, 4, 3);
        assert_eq!(parsed, b);
    }

    #[test]
    fn dummy_is_not_real() {
        assert!(!Slot::dummy(8).is_real());
        assert!(Slot { addr: 0, leaf: 0, data: vec![] }.is_real());
    }

    #[test]
    fn zeroed_block_parses_as_all_dummies() {
        // Freshly sealed regions hold all-zero payloads; they must read as
        // empty buckets, not as Z copies of a real block with addr 0.
        let bytes = vec![0u8; Bucket::serialized_len(4, 8)];
        let b = Bucket::deserialize(&bytes, 4, 8);
        assert!(b.slots.iter().all(|s| !s.is_real()));
    }

    #[test]
    fn serialized_len_matches() {
        assert_eq!(Bucket::serialized_len(4, 64), 4 * 76);
    }
}
