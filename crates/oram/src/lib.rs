//! Path ORAM over sealed untrusted storage (paper Appendix B).
//!
//! Oblivious RAM hides *which* logical block an access targets: any two
//! access sequences of the same length are indistinguishable to the
//! adversary observing the untrusted memory. ObliDB instantiates its
//! indexed storage method with the Path ORAM of Stefanov et al. (CCS'13):
//!
//! * Sealed blocks are arranged in a complete binary tree of buckets, each
//!   holding [`Z`] = 4 slots.
//! * A **position map** inside the enclave assigns every logical address a
//!   random leaf; the block lives somewhere on the root→leaf path.
//! * Every access reads one whole path, remaps the target to a fresh random
//!   leaf, and writes the same path back (evicting stash blocks greedily).
//!
//! The position map costs 8 bytes of oblivious memory per logical address
//! (paper §3.3, Figure 3 footnote). A [`PosMapKind::Recursive`] variant
//! stores the map in a second ORAM, trading a ~2× slowdown for a ~32×
//! smaller in-enclave map (paper Appendix B) — ObliDB defaults to the
//! non-recursive map, as the paper's implementation does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod path_oram;
mod queue;

pub use bucket::{Bucket, Slot, DUMMY_ADDR};
pub use path_oram::{OramError, OramStats, PathOram, PosMapKind, Z};
pub use queue::OramRequestQueue;
