//! The Path ORAM protocol (Stefanov et al., CCS'13) as used by ObliDB.

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveMemory, EnclaveRng, OmBudget, OmError};
use oblidb_storage::{batch_chunk_blocks, SealedRegion, SealedScan, StorageError};

use crate::bucket::{Bucket, Slot};

/// Bucket capacity (blocks per tree node). Z = 4 gives negligible stash
/// overflow probability (Stefanov et al. §5).
pub const Z: usize = 4;

/// How the position map is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PosMapKind {
    /// Entire map in oblivious memory: 8 bytes per logical address
    /// (paper §3.3). ObliDB's default, matching the paper's implementation.
    Direct,
    /// Map stored in a second, smaller ORAM; only the inner ORAM's direct
    /// map is charged to oblivious memory (paper Appendix B: one level of
    /// recursion suffices in practice, at ≈2× the access cost).
    Recursive {
        /// Position entries packed per inner ORAM block.
        entries_per_block: usize,
    },
}

/// Errors from ORAM operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OramError {
    /// Underlying sealed storage failed (includes tamper detection).
    Storage(StorageError),
    /// Logical address beyond the ORAM's fixed capacity.
    AddressOutOfRange {
        /// Requested address.
        addr: u64,
        /// ORAM capacity.
        capacity: u64,
    },
    /// The oblivious-memory budget cannot hold the position map.
    Om(OmError),
}

impl std::fmt::Display for OramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OramError::Storage(e) => write!(f, "storage: {e}"),
            OramError::AddressOutOfRange { addr, capacity } => {
                write!(f, "address {addr} out of range (capacity {capacity})")
            }
            OramError::Om(e) => write!(f, "oblivious memory: {e}"),
        }
    }
}

impl std::error::Error for OramError {}

impl From<StorageError> for OramError {
    fn from(e: StorageError) -> Self {
        OramError::Storage(e)
    }
}

impl From<OmError> for OramError {
    fn from(e: OmError) -> Self {
        OramError::Om(e)
    }
}

/// Access statistics (for the complexity-validation experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OramStats {
    /// Logical accesses performed (reads + writes + dummies).
    pub accesses: u64,
    /// Peak stash occupancy observed.
    pub stash_peak: usize,
}

enum PositionMap {
    Direct {
        map: Vec<u32>,
        // Holds the oblivious-memory reservation for the map's lifetime.
        _om: oblidb_enclave::OmAllocation,
    },
    Recursive {
        inner: Box<PathOram>,
        entries_per_block: usize,
    },
}

impl PositionMap {
    /// Returns the current leaf for `addr` and atomically installs
    /// `new_leaf`.
    fn get_and_set<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        addr: u64,
        new_leaf: u32,
    ) -> Result<u32, OramError> {
        match self {
            PositionMap::Direct { map, .. } => {
                let slot = &mut map[addr as usize];
                let old = *slot;
                *slot = new_leaf;
                Ok(old)
            }
            PositionMap::Recursive { inner, entries_per_block } => {
                let epb = *entries_per_block as u64;
                let block_idx = addr / epb;
                let offset = ((addr % epb) * 4) as usize;
                let mut block = inner.read(host, block_idx)?;
                let old = u32::from_le_bytes(block[offset..offset + 4].try_into().unwrap());
                block[offset..offset + 4].copy_from_slice(&new_leaf.to_le_bytes());
                inner.write(host, block_idx, &block)?;
                Ok(old)
            }
        }
    }
}

/// A Path ORAM instance holding `capacity` fixed-size logical blocks.
///
/// Reads of never-written addresses return all-zero payloads — a block
/// exists in exactly one of {some bucket, the stash} once written.
pub struct PathOram {
    store: SealedRegion,
    payload_len: usize,
    capacity: u64,
    leaves: u64,
    /// Number of bucket levels (root is level 0; leaves are level
    /// `levels - 1`).
    levels: u32,
    posmap: PositionMap,
    stash: Vec<Slot>,
    rng: EnclaveRng,
    stats: OramStats,
    scratch: Vec<u8>,
    /// Reusable bucket-index list for batched path reads/writes.
    path_buf: Vec<u64>,
}

fn next_pow2(x: u64) -> u64 {
    x.max(2).next_power_of_two()
}

impl PathOram {
    /// Creates an empty ORAM for `capacity` logical blocks of
    /// `payload_len` bytes. The position map is charged to `om`.
    pub fn new<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        capacity: u64,
        payload_len: usize,
        pos_kind: PosMapKind,
        om: &OmBudget,
        mut rng: EnclaveRng,
    ) -> Result<Self, OramError> {
        let leaves = next_pow2(capacity);
        let levels = leaves.trailing_zeros() + 1;
        let buckets = 2 * leaves - 1;
        let bucket_len = Bucket::serialized_len(Z, payload_len);
        let store = SealedRegion::create(host, key.clone(), buckets as usize, bucket_len)?;

        let posmap = match pos_kind {
            PosMapKind::Direct => {
                // Paper §3.3: 8 bytes of oblivious memory per row.
                let alloc = om.try_alloc(capacity as usize * 8)?;
                let map = (0..capacity).map(|_| rng.below(leaves) as u32).collect();
                PositionMap::Direct { map, _om: alloc }
            }
            PosMapKind::Recursive { entries_per_block } => {
                assert!(entries_per_block > 0, "entries_per_block must be positive");
                let inner_capacity = capacity.div_ceil(entries_per_block as u64);
                let inner_key = AeadKey(oblidb_crypto::derive_key(&key.0, b"posmap"));
                // Unwritten inner blocks read as zeros, so every address
                // starts mapped to leaf 0 — a public constant, remapped to a
                // fresh random leaf on first access, so nothing data-
                // dependent leaks.
                let inner = PathOram::new(
                    host,
                    inner_key,
                    inner_capacity,
                    entries_per_block * 4,
                    PosMapKind::Direct,
                    om,
                    rng.fork(),
                )?;
                PositionMap::Recursive { inner: Box::new(inner), entries_per_block }
            }
        };

        Ok(Self {
            store,
            payload_len,
            capacity,
            leaves,
            levels,
            posmap,
            stash: Vec::new(),
            rng,
            stats: OramStats::default(),
            scratch: vec![0u8; bucket_len],
            path_buf: Vec::new(),
        })
    }

    /// Number of logical blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Payload bytes per logical block.
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Buckets touched per access (path length), a public constant.
    pub fn path_len(&self) -> u32 {
        self.levels
    }

    /// Total buckets in the tree.
    pub fn bucket_count(&self) -> u64 {
        2 * self.leaves - 1
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> OramStats {
        self.stats
    }

    /// Bucket index of the node at `level` on the path to `leaf`.
    fn path_bucket(&self, leaf: u64, level: u32) -> u64 {
        let leaf_level = self.levels - 1;
        ((1u64 << level) - 1) + (leaf >> (leaf_level - level))
    }

    fn check_addr(&self, addr: u64) -> Result<(), OramError> {
        if addr >= self.capacity {
            return Err(OramError::AddressOutOfRange { addr, capacity: self.capacity });
        }
        Ok(())
    }

    /// The core protocol: read a path, mutate the target, evict, write the
    /// path back.
    fn access<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        addr: u64,
        new_data: Option<&[u8]>,
    ) -> Result<Vec<u8>, OramError> {
        self.check_addr(addr)?;
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::OramPath);
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::OramAccesses, 1);
        let timed = oblidb_telemetry::enabled().then(std::time::Instant::now);
        let new_leaf = self.rng.below(self.leaves) as u32;
        let old_leaf = self.posmap.get_and_set(host, addr, new_leaf)? as u64;

        self.read_path_into_stash(host, old_leaf)?;

        // Find or create the target in the stash.
        let out = match self.stash.iter_mut().find(|s| s.addr == addr) {
            Some(slot) => {
                slot.leaf = new_leaf;
                if let Some(data) = new_data {
                    slot.data.clear();
                    slot.data.extend_from_slice(data);
                }
                slot.data.clone()
            }
            None => {
                // Never-written address: materialize zeros (or new data).
                let data =
                    new_data.map(<[u8]>::to_vec).unwrap_or_else(|| vec![0u8; self.payload_len]);
                self.stash.push(Slot { addr, leaf: new_leaf, data: data.clone() });
                data
            }
        };
        self.stats.stash_peak = self.stats.stash_peak.max(self.stash.len());

        self.evict_path(host, old_leaf)?;
        self.stats.accesses += 1;
        if let Some(t0) = timed {
            oblidb_telemetry::histogram_record(
                oblidb_telemetry::HistogramId::OramPathNanos,
                t0.elapsed().as_nanos() as u64,
            );
        }
        Ok(out)
    }

    /// Reads the whole root-to-leaf path in **one** boundary crossing
    /// (batched gather over the path's bucket indices), then unpacks every
    /// real slot into the stash. The per-bucket trace — root first, leaf
    /// last — is identical to the per-block loop it replaced.
    fn read_path_into_stash<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        leaf: u64,
    ) -> Result<(), OramError> {
        self.path_buf.clear();
        for level in 0..self.levels {
            self.path_buf.push(self.path_bucket(leaf, level));
        }
        let bucket_len = Bucket::serialized_len(Z, self.payload_len);
        let path = self.store.read_batch_at(host, &self.path_buf)?;
        for plaintext in path.chunks_exact(bucket_len) {
            let bucket = Bucket::deserialize(plaintext, Z, self.payload_len);
            for slot in bucket.slots {
                if slot.is_real() {
                    self.stash.push(slot);
                }
            }
        }
        Ok(())
    }

    /// Rebuilds and writes back the whole path in one boundary crossing
    /// (batched scatter, leaf to root — the same bucket order as the
    /// per-block loop it replaced).
    fn evict_path<M: EnclaveMemory>(&mut self, host: &mut M, leaf: u64) -> Result<(), OramError> {
        // Greedy eviction from the deepest level up: place each stash block
        // in the deepest bucket on this path that also lies on the block's
        // own path.
        let bucket_len = Bucket::serialized_len(Z, self.payload_len);
        self.path_buf.clear();
        self.scratch.clear();
        self.scratch.resize(self.levels as usize * bucket_len, 0);
        for (depth, level) in (0..self.levels).rev().enumerate() {
            let idx = self.path_bucket(leaf, level);
            self.path_buf.push(idx);
            let mut bucket = Bucket::empty(Z, self.payload_len);
            let mut filled = 0;
            let mut i = 0;
            while i < self.stash.len() && filled < Z {
                let entry_leaf = self.stash[i].leaf as u64;
                if self.path_bucket(entry_leaf, level) == idx {
                    bucket.slots[filled] = self.stash.swap_remove(i);
                    filled += 1;
                } else {
                    i += 1;
                }
            }
            bucket.serialize_into(
                self.payload_len,
                &mut self.scratch[depth * bucket_len..][..bucket_len],
            );
        }
        self.store.write_batch_at(host, &self.path_buf, &self.scratch)?;
        Ok(())
    }

    /// Oblivious read of logical block `addr`.
    pub fn read<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        addr: u64,
    ) -> Result<Vec<u8>, OramError> {
        self.access(host, addr, None)
    }

    /// Oblivious write of logical block `addr`.
    pub fn write<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        addr: u64,
        data: &[u8],
    ) -> Result<(), OramError> {
        assert_eq!(data.len(), self.payload_len, "payload length mismatch");
        self.access(host, addr, Some(data)).map(|_| ())
    }

    /// A dummy access: indistinguishable from a real one (paper §3.2 pads
    /// B+ tree operations with these to reach worst-case access counts).
    pub fn dummy_access<M: EnclaveMemory>(&mut self, host: &mut M) -> Result<(), OramError> {
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::OramPath);
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::OramAccesses, 1);
        let leaf = self.rng.below(self.leaves);
        self.read_path_into_stash(host, leaf)?;
        self.stats.stash_peak = self.stats.stash_peak.max(self.stash.len());
        self.evict_path(host, leaf)?;
        self.stats.accesses += 1;
        Ok(())
    }

    /// Batched oblivious access: services every request in `ops` with a
    /// single path-union read and a single joint eviction write (two
    /// boundary crossings total, like one plain access).
    ///
    /// Each element of `ops` is `(addr, write)` — `None` reads, `Some(data)`
    /// writes. Results come back in request order and see earlier writes in
    /// the same batch (read-your-writes). Every request still remaps its
    /// address and fetches one full path, so the trace reveals exactly
    /// `ops.len()` paths — the same leakage as issuing the requests one by
    /// one. A duplicate address's later request fetches the fresh random
    /// path its predecessor just installed, which no block yet lives on: a
    /// natural dummy path, exactly as in Obladi-style epoch batching. The
    /// saving is the crossings and the shared bucket I/O: overlapping
    /// buckets (at least the root, usually the top levels) are read and
    /// written once instead of once per request.
    pub fn access_batch<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        ops: &[(u64, Option<Vec<u8>>)],
    ) -> Result<Vec<Vec<u8>>, OramError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        for &(addr, ref data) in ops {
            self.check_addr(addr)?;
            if let Some(data) = data {
                assert_eq!(data.len(), self.payload_len, "payload length mismatch");
            }
        }
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::OramPath);
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::OramAccesses, ops.len() as u64);
        let timed = oblidb_telemetry::enabled().then(std::time::Instant::now);

        // Remap every address up front, collecting the old (to-be-read)
        // leaves. For a duplicate address the second get_and_set returns the
        // first request's fresh leaf — an unwritten random path.
        let mut remapped = Vec::with_capacity(ops.len());
        for &(addr, _) in ops {
            let new_leaf = self.rng.below(self.leaves) as u32;
            let old_leaf = self.posmap.get_and_set(host, addr, new_leaf)? as u64;
            remapped.push((old_leaf, new_leaf));
        }

        // Union of the paths' bucket indices, root-first per path in
        // request order. The root is shared by every path, so it is always
        // first and every stash block can land somewhere at eviction.
        let mut union: Vec<u64> = Vec::with_capacity(ops.len() * self.levels as usize);
        for &(old_leaf, _) in &remapped {
            for level in 0..self.levels {
                let idx = self.path_bucket(old_leaf, level);
                if !union.contains(&idx) {
                    union.push(idx);
                }
            }
        }
        let dense = ops.len() as u64 * self.levels as u64;
        oblidb_telemetry::counter_add(
            oblidb_telemetry::Counter::OramBatchedFetches,
            dense - union.len() as u64,
        );

        // One gather over the union; unpack every real slot into the stash.
        let bucket_len = Bucket::serialized_len(Z, self.payload_len);
        self.path_buf.clear();
        self.path_buf.extend_from_slice(&union);
        let fetched = self.store.read_batch_at(host, &self.path_buf)?;
        for plaintext in fetched.chunks_exact(bucket_len) {
            let bucket = Bucket::deserialize(plaintext, Z, self.payload_len);
            for slot in bucket.slots {
                if slot.is_real() {
                    self.stash.push(slot);
                }
            }
        }

        // Service the requests in order against the stash. Later requests
        // on the same address observe earlier writes, and the last writer's
        // leaf assignment matches what the position map already says.
        let mut out = Vec::with_capacity(ops.len());
        for (&(addr, ref new_data), &(_, new_leaf)) in ops.iter().zip(&remapped) {
            let data = match self.stash.iter_mut().find(|s| s.addr == addr) {
                Some(slot) => {
                    slot.leaf = new_leaf;
                    if let Some(data) = new_data {
                        slot.data.clear();
                        slot.data.extend_from_slice(data);
                    }
                    slot.data.clone()
                }
                None => {
                    let data = new_data.clone().unwrap_or_else(|| vec![0u8; self.payload_len]);
                    self.stash.push(Slot { addr, leaf: new_leaf, data: data.clone() });
                    data
                }
            };
            out.push(data);
        }
        self.stats.stash_peak = self.stats.stash_peak.max(self.stash.len());

        // Joint greedy eviction over the union, deepest bucket first. A
        // bucket's level is recoverable from its index (complete binary
        // tree, root = 0), so sorting indices descending visits leaves
        // before ancestors — the same deepest-first order as evict_path,
        // generalized to a forest of overlapping paths.
        union.sort_unstable_by(|a, b| b.cmp(a));
        self.path_buf.clear();
        self.scratch.clear();
        self.scratch.resize(union.len() * bucket_len, 0);
        for (depth, &idx) in union.iter().enumerate() {
            let level = (idx + 1).ilog2();
            self.path_buf.push(idx);
            let mut bucket = Bucket::empty(Z, self.payload_len);
            let mut filled = 0;
            let mut i = 0;
            while i < self.stash.len() && filled < Z {
                let entry_leaf = self.stash[i].leaf as u64;
                if self.path_bucket(entry_leaf, level) == idx {
                    bucket.slots[filled] = self.stash.swap_remove(i);
                    filled += 1;
                } else {
                    i += 1;
                }
            }
            bucket.serialize_into(
                self.payload_len,
                &mut self.scratch[depth * bucket_len..][..bucket_len],
            );
        }
        self.store.write_batch_at(host, &self.path_buf, &self.scratch)?;

        self.stats.accesses += ops.len() as u64;
        if let Some(t0) = timed {
            oblidb_telemetry::histogram_record(
                oblidb_telemetry::HistogramId::OramPathNanos,
                t0.elapsed().as_nanos() as u64,
            );
        }
        Ok(out)
    }

    /// Linear scan over the whole structure: every bucket in index order,
    /// then the (enclave-resident) stash. The callback receives every slot,
    /// dummy or real, so callers can do data-independent per-slot work —
    /// this is how an indexed table is scanned "as if flat" (paper §3.2:
    /// internal nodes and ORAM dummies are treated as dummy blocks).
    pub fn scan_slots<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        mut f: impl FnMut(&Slot),
    ) -> Result<(), OramError> {
        // Buckets are contiguous, so the scan streams them in batched
        // chunks — one crossing per chunk instead of one per bucket.
        let bucket_len = Bucket::serialized_len(Z, self.payload_len);
        let mut scan = SealedScan::with_chunk(&self.store, batch_chunk_blocks(bucket_len));
        while let Some((_, payloads)) = scan.next_chunk(host, &mut self.store)? {
            for plaintext in payloads.chunks_exact(bucket_len) {
                let bucket = Bucket::deserialize(plaintext, Z, self.payload_len);
                for slot in &bucket.slots {
                    f(slot);
                }
            }
        }
        for slot in &self.stash {
            f(slot);
        }
        Ok(())
    }

    /// Bulk-loads contents at creation time (pre-deployment loading; see
    /// DESIGN.md §7). `items[i]` becomes logical block `i`.
    pub fn with_contents<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        items: &[Vec<u8>],
        payload_len: usize,
        pos_kind: PosMapKind,
        om: &OmBudget,
        rng: EnclaveRng,
    ) -> Result<Self, OramError> {
        let mut oram = Self::new(host, key, items.len() as u64, payload_len, pos_kind, om, rng)?;

        // Build the whole tree in enclave memory, then seal each bucket once.
        let bucket_count = oram.bucket_count() as usize;
        let mut tree: Vec<Bucket> = vec![Bucket::empty(Z, payload_len); bucket_count];
        let mut fill: Vec<usize> = vec![0; bucket_count];

        for (addr, data) in items.iter().enumerate() {
            assert_eq!(data.len(), payload_len, "payload length mismatch");
            // Assign a fresh random leaf and record it in the position map
            // (works for both direct and recursive maps).
            let leaf = oram.rng.below(oram.leaves);
            oram.posmap.get_and_set(host, addr as u64, leaf as u32)?;
            let slot = Slot { addr: addr as u64, leaf: leaf as u32, data: data.clone() };
            // Deepest available bucket on the path, else stash.
            let mut placed = false;
            for level in (0..oram.levels).rev() {
                let idx = oram.path_bucket(leaf, level) as usize;
                if fill[idx] < Z {
                    tree[idx].slots[fill[idx]] = slot.clone();
                    fill[idx] += 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                oram.stash.push(slot);
            }
        }

        // Seal the finished tree in contiguous batched chunks: one
        // crossing per chunk instead of one per bucket.
        let bucket_len = Bucket::serialized_len(Z, payload_len);
        let chunk = batch_chunk_blocks(bucket_len);
        let mut buf = vec![0u8; chunk * bucket_len];
        let mut idx = 0usize;
        while idx < tree.len() {
            let n = chunk.min(tree.len() - idx);
            for (off, bucket) in tree[idx..idx + n].iter().enumerate() {
                bucket.serialize_into(payload_len, &mut buf[off * bucket_len..][..bucket_len]);
            }
            oram.store.write_batch(host, idx as u64, &buf[..n * bucket_len])?;
            idx += n;
        }
        Ok(oram)
    }

    /// Releases untrusted memory.
    pub fn free<M: EnclaveMemory>(self, host: &mut M) -> Result<(), OramError> {
        match self.posmap {
            PositionMap::Recursive { inner, .. } => inner.free(host)?,
            PositionMap::Direct { .. } => {}
        }
        self.store.free(host)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_enclave::Host;
    use oblidb_enclave::{AccessKind, DEFAULT_OM_BYTES};
    use std::collections::HashMap;

    fn setup(capacity: u64, payload: usize, kind: PosMapKind) -> (Host, PathOram, OmBudget) {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let oram = PathOram::new(
            &mut host,
            AeadKey([9u8; 32]),
            capacity,
            payload,
            kind,
            &om,
            EnclaveRng::seed_from_u64(42),
        )
        .unwrap();
        (host, oram, om)
    }

    #[test]
    fn read_your_writes_direct() {
        let (mut host, mut oram, _om) = setup(64, 16, PosMapKind::Direct);
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = EnclaveRng::seed_from_u64(7);
        for _ in 0..500 {
            let addr = rng.below(64);
            if rng.below(2) == 0 {
                let mut data = vec![0u8; 16];
                rng.fill(&mut data);
                oram.write(&mut host, addr, &data).unwrap();
                model.insert(addr, data);
            } else {
                let got = oram.read(&mut host, addr).unwrap();
                let expected = model.get(&addr).cloned().unwrap_or_else(|| vec![0u8; 16]);
                assert_eq!(got, expected, "addr {addr}");
            }
        }
    }

    #[test]
    fn read_your_writes_recursive() {
        let (mut host, mut oram, _om) =
            setup(64, 16, PosMapKind::Recursive { entries_per_block: 8 });
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = EnclaveRng::seed_from_u64(8);
        for _ in 0..300 {
            let addr = rng.below(64);
            if rng.below(2) == 0 {
                let mut data = vec![0u8; 16];
                rng.fill(&mut data);
                oram.write(&mut host, addr, &data).unwrap();
                model.insert(addr, data);
            } else {
                let got = oram.read(&mut host, addr).unwrap();
                let expected = model.get(&addr).cloned().unwrap_or_else(|| vec![0u8; 16]);
                assert_eq!(got, expected);
            }
        }
    }

    #[test]
    fn unwritten_reads_zero() {
        let (mut host, mut oram, _om) = setup(10, 8, PosMapKind::Direct);
        assert_eq!(oram.read(&mut host, 3).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut host, mut oram, _om) = setup(10, 8, PosMapKind::Direct);
        assert_eq!(
            oram.read(&mut host, 10).unwrap_err(),
            OramError::AddressOutOfRange { addr: 10, capacity: 10 }
        );
    }

    #[test]
    fn access_touches_exactly_one_path() {
        let (mut host, mut oram, _om) = setup(32, 8, PosMapKind::Direct);
        let region = oram.store.region_id();
        host.start_trace();
        oram.write(&mut host, 5, &[1u8; 8]).unwrap();
        let trace = host.take_trace();
        let events = trace.for_region(region);
        let levels = oram.path_len() as usize;
        assert_eq!(events.len(), 2 * levels);
        // First half: reads root -> leaf; second half: writes leaf -> root.
        for (i, e) in events.iter().enumerate() {
            if i < levels {
                assert_eq!(e.kind, AccessKind::Read);
            } else {
                assert_eq!(e.kind, AccessKind::Write);
            }
        }
        // Reads and writes cover the same buckets, reversed.
        let reads: Vec<u64> = events[..levels].iter().map(|e| e.index).collect();
        let mut writes: Vec<u64> = events[levels..].iter().map(|e| e.index).collect();
        writes.reverse();
        assert_eq!(reads, writes);
        // The read sequence is a valid root-to-leaf path.
        assert_eq!(reads[0], 0);
        for w in reads.windows(2) {
            assert!(w[1] == 2 * w[0] + 1 || w[1] == 2 * w[0] + 2, "not a tree path: {reads:?}");
        }
    }

    #[test]
    fn access_is_two_crossings() {
        // The whole root-to-leaf path is fetched in one batched crossing
        // and written back in another, regardless of tree height.
        let (mut host, mut oram, _om) = setup(256, 8, PosMapKind::Direct);
        host.reset_stats();
        oram.write(&mut host, 5, &[1u8; 8]).unwrap();
        let s = host.stats();
        assert_eq!(s.crossings, 2, "one read crossing + one write crossing per access");
        assert_eq!(s.total_accesses(), 2 * oram.path_len() as u64);
        host.reset_stats();
        oram.dummy_access(&mut host).unwrap();
        assert_eq!(host.stats().crossings, 2, "dummy accesses batch identically");
    }

    #[test]
    fn batch_is_two_crossings() {
        // A whole batch costs the same number of crossings as one access:
        // one gather over the path union, one scatter back.
        let (mut host, mut oram, _om) = setup(256, 8, PosMapKind::Direct);
        let ops: Vec<(u64, Option<Vec<u8>>)> =
            (0..8).map(|i| (i * 3, Some(vec![i as u8; 8]))).collect();
        host.reset_stats();
        oram.access_batch(&mut host, &ops).unwrap();
        let s = host.stats();
        assert_eq!(s.crossings, 2, "batched gather + batched scatter");
        // The union is smaller than the dense path set (root is shared).
        assert!(s.total_accesses() < 2 * 8 * oram.path_len() as u64);
    }

    #[test]
    fn batch_matches_sequential_model() {
        // Batched execution is equivalent to running the requests one by
        // one, including read-your-writes on duplicate addresses inside a
        // single batch.
        let (mut host, mut oram, _om) = setup(64, 16, PosMapKind::Direct);
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = EnclaveRng::seed_from_u64(11);
        for round in 0..60 {
            let batch_len = 1 + rng.below(7) as usize;
            let mut ops: Vec<(u64, Option<Vec<u8>>)> = Vec::with_capacity(batch_len);
            for _ in 0..batch_len {
                // Small address space so duplicates are common.
                let addr = rng.below(16);
                if rng.below(2) == 0 {
                    let mut data = vec![0u8; 16];
                    rng.fill(&mut data);
                    ops.push((addr, Some(data)));
                } else {
                    ops.push((addr, None));
                }
            }
            let got = oram.access_batch(&mut host, &ops).unwrap();
            assert_eq!(got.len(), ops.len());
            for ((addr, write), result) in ops.iter().zip(&got) {
                match write {
                    Some(data) => {
                        assert_eq!(result, data, "round {round}: write echoes its payload");
                        model.insert(*addr, data.clone());
                    }
                    None => {
                        let expected = model.get(addr).cloned().unwrap_or_else(|| vec![0u8; 16]);
                        assert_eq!(result, &expected, "round {round} addr {addr}");
                    }
                }
            }
        }
        // Plain accesses after batches still see the batched state.
        for (addr, data) in &model {
            assert_eq!(&oram.read(&mut host, *addr).unwrap(), data);
        }
    }

    #[test]
    fn batch_recursive_posmap() {
        let (mut host, mut oram, _om) =
            setup(64, 16, PosMapKind::Recursive { entries_per_block: 8 });
        let ops: Vec<(u64, Option<Vec<u8>>)> =
            (0..10u64).map(|i| (i, Some(vec![i as u8 + 1; 16]))).collect();
        oram.access_batch(&mut host, &ops).unwrap();
        let reads: Vec<(u64, Option<Vec<u8>>)> = (0..10u64).map(|i| (i, None)).collect();
        let got = oram.access_batch(&mut host, &reads).unwrap();
        for (i, data) in got.iter().enumerate() {
            assert_eq!(data, &vec![i as u8 + 1; 16]);
        }
    }

    #[test]
    fn batch_trace_is_union_of_paths() {
        // The data-region trace of a batch is: a read of each union bucket,
        // then a write of exactly the same buckets. Duplicate addresses
        // still contribute a (fresh, dummy) path each, so the trace shape
        // depends only on the batch size and the sampled leaves — never on
        // which addresses repeat.
        let (mut host, mut oram, _om) = setup(32, 8, PosMapKind::Direct);
        let region = oram.store.region_id();
        let ops: Vec<(u64, Option<Vec<u8>>)> = vec![(4, Some(vec![1u8; 8])), (4, None), (9, None)];
        host.start_trace();
        oram.access_batch(&mut host, &ops).unwrap();
        let trace = host.take_trace();
        let events = trace.for_region(region);
        let read_idx: Vec<u64> =
            events.iter().filter(|e| e.kind == AccessKind::Read).map(|e| e.index).collect();
        let mut written: Vec<u64> =
            events.iter().filter(|e| e.kind == AccessKind::Write).map(|e| e.index).collect();
        assert_eq!(read_idx.len(), written.len());
        let levels = oram.path_len() as usize;
        // At least one full path, at most one per request; root always read.
        assert!(read_idx.len() >= levels && read_idx.len() <= ops.len() * levels);
        assert!(read_idx.contains(&0), "root bucket is always in the union");
        let mut read_sorted = read_idx.clone();
        read_sorted.sort_unstable();
        written.sort_unstable();
        assert_eq!(read_sorted, written, "eviction rewrites exactly the union");
    }

    #[test]
    fn empty_batch_is_free() {
        let (mut host, mut oram, _om) = setup(16, 8, PosMapKind::Direct);
        host.reset_stats();
        assert!(oram.access_batch(&mut host, &[]).unwrap().is_empty());
        assert_eq!(host.stats().crossings, 0);
    }

    #[test]
    fn dummy_access_indistinguishable_in_shape() {
        let (mut host, mut oram, _om) = setup(32, 8, PosMapKind::Direct);
        let region = oram.store.region_id();
        host.start_trace();
        oram.read(&mut host, 0).unwrap();
        let real = host.take_trace().for_region(region).len();
        host.start_trace();
        oram.dummy_access(&mut host).unwrap();
        let dummy = host.take_trace().for_region(region).len();
        assert_eq!(real, dummy);
    }

    #[test]
    fn access_count_independent_of_addresses() {
        // Two different logical address sequences of the same length produce
        // the same number of untrusted accesses — the executable core of the
        // ORAM obliviousness guarantee.
        let counts: Vec<u64> = [vec![0u64; 50], (0..50).collect::<Vec<u64>>()]
            .into_iter()
            .map(|addrs| {
                let (mut host, mut oram, _om) = setup(64, 8, PosMapKind::Direct);
                host.reset_stats();
                for a in addrs {
                    oram.read(&mut host, a).unwrap();
                }
                host.stats().total_accesses()
            })
            .collect();
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn stash_stays_bounded() {
        let (mut host, mut oram, _om) = setup(256, 8, PosMapKind::Direct);
        let mut rng = EnclaveRng::seed_from_u64(3);
        for i in 0..256 {
            oram.write(&mut host, i, &[i as u8; 8]).unwrap();
        }
        for _ in 0..2000 {
            let addr = rng.below(256);
            oram.read(&mut host, addr).unwrap();
        }
        assert!(oram.stats().stash_peak < 120, "stash peak {} too large", oram.stats().stash_peak);
    }

    #[test]
    fn scan_slots_sees_all_blocks() {
        let (mut host, mut oram, _om) = setup(20, 8, PosMapKind::Direct);
        for i in 0..20 {
            oram.write(&mut host, i, &[i as u8; 8]).unwrap();
        }
        let mut seen = Vec::new();
        oram.scan_slots(&mut host, |slot| {
            if slot.is_real() {
                seen.push(slot.addr);
            }
        })
        .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn bulk_load_roundtrip() {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let items: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i; 8]).collect();
        let mut oram = PathOram::with_contents(
            &mut host,
            AeadKey([1u8; 32]),
            &items,
            8,
            PosMapKind::Direct,
            &om,
            EnclaveRng::seed_from_u64(5),
        )
        .unwrap();
        for (i, item) in items.iter().enumerate() {
            assert_eq!(&oram.read(&mut host, i as u64).unwrap(), item);
        }
    }

    #[test]
    fn bulk_load_recursive_roundtrip() {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let items: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; 8]).collect();
        let mut oram = PathOram::with_contents(
            &mut host,
            AeadKey([1u8; 32]),
            &items,
            8,
            PosMapKind::Recursive { entries_per_block: 16 },
            &om,
            EnclaveRng::seed_from_u64(5),
        )
        .unwrap();
        for (i, item) in items.iter().enumerate() {
            assert_eq!(&oram.read(&mut host, i as u64).unwrap(), item);
        }
    }

    #[test]
    fn recursive_posmap_uses_less_oblivious_memory() {
        let mut host = Host::new();
        let om_direct = OmBudget::new(DEFAULT_OM_BYTES);
        let _a = PathOram::new(
            &mut host,
            AeadKey([1u8; 32]),
            4096,
            8,
            PosMapKind::Direct,
            &om_direct,
            EnclaveRng::seed_from_u64(1),
        )
        .unwrap();
        let om_rec = OmBudget::new(DEFAULT_OM_BYTES);
        let _b = PathOram::new(
            &mut host,
            AeadKey([1u8; 32]),
            4096,
            8,
            PosMapKind::Recursive { entries_per_block: 256 },
            &om_rec,
            EnclaveRng::seed_from_u64(1),
        )
        .unwrap();
        assert_eq!(om_direct.used(), 4096 * 8);
        assert!(om_rec.used() <= 4096 * 8 / 100, "recursive map used {}", om_rec.used());
    }

    #[test]
    fn om_exhaustion_fails_cleanly() {
        let mut host = Host::new();
        let om = OmBudget::new(16); // room for 2 position entries only
        let result = PathOram::new(
            &mut host,
            AeadKey([1u8; 32]),
            1024,
            8,
            PosMapKind::Direct,
            &om,
            EnclaveRng::seed_from_u64(1),
        );
        assert!(matches!(result.err().unwrap(), OramError::Om(_)));
    }

    #[test]
    fn leaf_choice_looks_uniform() {
        // Statistical smoke test: repeated accesses to a single address must
        // touch many distinct leaf-level buckets (leaf remapping works).
        let (mut host, mut oram, _om) = setup(64, 8, PosMapKind::Direct);
        let region = oram.store.region_id();
        oram.write(&mut host, 0, &[1u8; 8]).unwrap();
        let leaf_level_start = (1u64 << (oram.path_len() - 1)) - 1;
        let mut leaves_seen = std::collections::HashSet::new();
        for _ in 0..200 {
            host.start_trace();
            oram.read(&mut host, 0).unwrap();
            let t = host.take_trace();
            for e in t.for_region(region) {
                if e.index >= leaf_level_start && e.kind == AccessKind::Read {
                    leaves_seen.insert(e.index);
                }
            }
        }
        // 64 leaves; 200 draws should hit a large fraction.
        assert!(leaves_seen.len() > 40, "only {} distinct leaves", leaves_seen.len());
    }

    #[test]
    fn free_releases_regions() {
        let (mut host, oram, om) = setup(32, 8, PosMapKind::Direct);
        oram.free(&mut host).unwrap();
        drop(om);
        // Re-allocating after free works fine.
        let om2 = OmBudget::new(DEFAULT_OM_BYTES);
        let _again = PathOram::new(
            &mut host,
            AeadKey([2u8; 32]),
            32,
            8,
            PosMapKind::Direct,
            &om2,
            EnclaveRng::seed_from_u64(11),
        )
        .unwrap();
    }

    #[test]
    fn overwrite_updates_value() {
        let (mut host, mut oram, _om) = setup(8, 4, PosMapKind::Direct);
        oram.write(&mut host, 2, &[1, 1, 1, 1]).unwrap();
        oram.write(&mut host, 2, &[2, 2, 2, 2]).unwrap();
        assert_eq!(oram.read(&mut host, 2).unwrap(), vec![2, 2, 2, 2]);
        // No duplicate entries for the same address exist anywhere.
        let mut count = 0;
        oram.scan_slots(&mut host, |s| {
            if s.addr == 2 {
                count += 1;
            }
        })
        .unwrap();
        assert_eq!(count, 1);
    }
}
