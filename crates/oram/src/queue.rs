//! Epoch-scoped ORAM request queue (Obladi-style deferred accesses).
//!
//! Instead of touching the ORAM once per logical request, callers enqueue
//! reads and writes during an epoch and flush the whole set in one
//! [`PathOram::access_batch`] call: two boundary crossings and one
//! deduplicated path-union fetch for the entire queue. Each enqueue returns
//! a ticket — the index of that request's result in the `Vec` returned by
//! [`OramRequestQueue::flush`].

use oblidb_enclave::EnclaveMemory;

use crate::path_oram::{OramError, PathOram};

/// A queue of deferred ORAM requests, flushed as one batched access.
///
/// Requests are serviced in enqueue order, so a read enqueued after a write
/// to the same address observes that write (read-your-writes within the
/// epoch), exactly as if the requests had been issued one at a time.
#[derive(Debug, Default)]
pub struct OramRequestQueue {
    ops: Vec<(u64, Option<Vec<u8>>)>,
}

impl OramRequestQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a read of logical block `addr`; returns the result ticket.
    pub fn enqueue_read(&mut self, addr: u64) -> usize {
        self.ops.push((addr, None));
        self.ops.len() - 1
    }

    /// Enqueues a write of `data` to logical block `addr`; returns the
    /// result ticket (a write's result echoes the written payload).
    pub fn enqueue_write(&mut self, addr: u64, data: Vec<u8>) -> usize {
        self.ops.push((addr, Some(data)));
        self.ops.len() - 1
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Discards all queued requests without touching the ORAM (epoch
    /// abort). The queue is reusable afterwards.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Services every queued request in one batched ORAM access and empties
    /// the queue. `result[ticket]` holds the block contents each request
    /// observed. An empty queue flushes to an empty `Vec` with no I/O.
    pub fn flush<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        oram: &mut PathOram,
    ) -> Result<Vec<Vec<u8>>, OramError> {
        let ops = std::mem::take(&mut self.ops);
        oram.access_batch(host, &ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path_oram::{PathOram, PosMapKind};
    use oblidb_crypto::AeadKey;
    use oblidb_enclave::{EnclaveRng, Host, OmBudget, DEFAULT_OM_BYTES};

    fn setup() -> (Host, PathOram) {
        let mut host = Host::new();
        let om = OmBudget::new(DEFAULT_OM_BYTES);
        let oram = PathOram::new(
            &mut host,
            AeadKey([5u8; 32]),
            32,
            8,
            PosMapKind::Direct,
            &om,
            EnclaveRng::seed_from_u64(17),
        )
        .unwrap();
        (host, oram)
    }

    #[test]
    fn tickets_index_results_in_order() {
        let (mut host, mut oram) = setup();
        let mut q = OramRequestQueue::new();
        let w = q.enqueue_write(3, vec![7u8; 8]);
        let r_before = q.enqueue_read(5);
        let r_after = q.enqueue_read(3);
        assert_eq!((w, r_before, r_after), (0, 1, 2));
        assert_eq!(q.len(), 3);
        let results = q.flush(&mut host, &mut oram).unwrap();
        assert!(q.is_empty(), "flush drains the queue");
        assert_eq!(results[w], vec![7u8; 8]);
        assert_eq!(results[r_before], vec![0u8; 8], "never-written block reads zero");
        assert_eq!(results[r_after], vec![7u8; 8], "read-your-writes inside the epoch");
    }

    #[test]
    fn flush_is_one_batched_access() {
        let (mut host, mut oram) = setup();
        let mut q = OramRequestQueue::new();
        for i in 0..6u64 {
            q.enqueue_write(i, vec![i as u8; 8]);
        }
        host.reset_stats();
        q.flush(&mut host, &mut oram).unwrap();
        assert_eq!(host.stats().crossings, 2, "whole queue in one gather + one scatter");
        for i in 0..6u64 {
            assert_eq!(oram.read(&mut host, i).unwrap(), vec![i as u8; 8]);
        }
    }

    #[test]
    fn clear_aborts_without_io() {
        let (mut host, mut oram) = setup();
        let mut q = OramRequestQueue::new();
        q.enqueue_write(1, vec![9u8; 8]);
        q.clear();
        assert!(q.is_empty());
        host.reset_stats();
        assert!(q.flush(&mut host, &mut oram).unwrap().is_empty());
        assert_eq!(host.stats().crossings, 0);
        assert_eq!(oram.read(&mut host, 1).unwrap(), vec![0u8; 8], "aborted write never lands");
    }
}
