//! `oblidb-serve` — the ObliDB TCP serving front-end.
//!
//! ```text
//! oblidb-serve [--addr HOST:PORT] [--substrate SPEC] [--workers N]
//!              [--stall-nanos N] [--audit] [--seed N] [--epoch-ms N]
//! ```
//!
//! Builds a fresh engine over the given substrate spec (`memory`,
//! `disk:/path`, `cached:N:disk:/path`, `sharded:N:disk:/path`, ...),
//! wraps it in a `SharedDatabase`, and serves sessions until a client
//! sends the shutdown verb (`oblidb-sql` dot-command `.shutdown`) or
//! the process receives EOF-equivalent listener failure. Disk-backed
//! stores are checkpointed through the admin latch before exit.
//!
//! `--stall-nanos` prices each enclave boundary crossing at the shared
//! layer (paid outside the store lock, so stalls overlap across
//! sessions) — the serving-side analogue of the bench harness's
//! crossing cost.
//!
//! `--epoch-ms N` (N > 0) enables the write-ahead log with Obladi-style
//! group commit: commits pool into N-millisecond epochs and share one
//! durability fsync per epoch, and clients get `BEGIN`/`COMMIT`/
//! `ROLLBACK` over the wire (they get those even without the flag; the
//! flag adds the group fsync schedule).

use std::process::ExitCode;

use oblidb_core::{Database, DbConfig, EpochConfig, SharedDatabase, WalConfig};
use oblidb_server::server::{serve, ServerConfig};
use oblidb_substrates::SubstrateSpec;

struct Args {
    addr: String,
    substrate: String,
    workers: usize,
    stall_nanos: u64,
    audit: bool,
    seed: u64,
    epoch_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7033".to_string(),
        substrate: "memory".to_string(),
        workers: 4,
        stall_nanos: 0,
        audit: false,
        seed: 7,
        epoch_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--substrate" => args.substrate = value("--substrate")?,
            "--workers" => {
                args.workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--stall-nanos" => {
                args.stall_nanos =
                    value("--stall-nanos")?.parse().map_err(|e| format!("--stall-nanos: {e}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--epoch-ms" => {
                args.epoch_ms =
                    value("--epoch-ms")?.parse().map_err(|e| format!("--epoch-ms: {e}"))?
            }
            "--audit" => args.audit = true,
            "--help" | "-h" => {
                return Err(
                    "usage: oblidb-serve [--addr HOST:PORT] [--substrate SPEC] [--workers N] \
                     [--stall-nanos N] [--audit] [--seed N] [--epoch-ms N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let spec: SubstrateSpec = match args.substrate.parse() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--substrate {}: {e}", args.substrate);
            return ExitCode::FAILURE;
        }
    };
    let host = match spec.build() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("substrate: {e}");
            return ExitCode::FAILURE;
        }
    };
    oblidb_telemetry::set_enabled(true);
    let epoch = (args.epoch_ms > 0)
        .then(|| EpochConfig { duration_ms: args.epoch_ms, ..EpochConfig::default() });
    let config = DbConfig {
        seed: args.seed,
        audit: args.audit,
        wal: if epoch.is_some() { Some(WalConfig::default()) } else { DbConfig::default().wal },
        epoch,
        ..DbConfig::default()
    };
    let db = match Database::try_with_memory(host, config) {
        Ok(db) => SharedDatabase::adopt(db),
        Err(e) => {
            eprintln!("engine: {e}");
            return ExitCode::FAILURE;
        }
    };
    db.store().set_crossing_stall(args.stall_nanos);
    let durable = spec.persist_dir().is_some();
    let server_config = ServerConfig { addr: args.addr.clone(), workers: args.workers, epoch };
    let handle = match serve(db.clone(), server_config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "oblidb-serve listening on {} ({} workers, substrate {}{})",
        handle.addr(),
        args.workers,
        args.substrate,
        match epoch {
            Some(e) => format!(", group commit every {} ms", e.duration_ms),
            None => String::new(),
        }
    );
    // Block until a client's shutdown verb stops the server — the only
    // stop signal in v1.
    let stats = handle.wait();
    if durable {
        if let Err(e) = db.admin(|engine| engine.checkpoint()) {
            eprintln!("checkpoint on shutdown failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "oblidb-serve: {} connections, {} statements ({} errors), {} B in / {} B out",
        stats.connections, stats.statements, stats.errors, stats.bytes_in, stats.bytes_out
    );
    ExitCode::SUCCESS
}
