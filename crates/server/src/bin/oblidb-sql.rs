//! `oblidb-sql` — interactive shell (and pipeable batch client) for an
//! ObliDB server.
//!
//! ```text
//! oblidb-sql [--addr HOST:PORT]
//! ```
//!
//! Reads SQL from stdin — interactively with a prompt when stdin is a
//! terminal-ish session, silently when piped (CI smoke drives it with a
//! heredoc). Statements end at a `;` and may span lines; a continuation
//! prompt shows while a statement is open, and a quote-aware splitter
//! keeps `;` inside string literals out of it. An unterminated trailing
//! statement still runs at EOF, so `echo "SELECT 1" | oblidb-sql` keeps
//! working. `BEGIN; ...; COMMIT;` drives a server-side transaction.
//!
//! Lines starting with `.` (outside an open statement) are shell
//! commands:
//!
//! ```text
//! .ping        liveness probe
//! .metrics     merged metrics snapshot (JSON)
//! .shutdown    stop the server gracefully, then exit
//! .quit        close this connection, leave the server running
//! ```
//!
//! Result sets print as tab-separated rows under a header line.

use std::io::{BufRead, Write};
use std::process::ExitCode;

use oblidb_core::Value;
use oblidb_server::client::{ClientError, Connection, StatementResult};

fn render_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Text(s) => s.clone(),
    }
}

fn run_statement(conn: &mut Connection, sql: &str) {
    match conn.execute(sql) {
        Ok(StatementResult::Rows { schema, rows }) => {
            let header: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
            if !header.is_empty() {
                println!("{}", header.join("\t"));
            }
            for row in &rows {
                let cells: Vec<String> = row.iter().map(render_value).collect();
                println!("{}", cells.join("\t"));
            }
            println!("({} row{})", rows.len(), if rows.len() == 1 { "" } else { "s" });
        }
        Ok(StatementResult::RowsAffected(n)) => {
            println!("OK, {n} row{} affected", if n == 1 { "" } else { "s" })
        }
        Err(ClientError::Server(msg)) => println!("error: {msg}"),
        Err(e) => println!("connection error: {e}"),
    }
}

/// Accumulates lines into `;`-terminated statements, tracking whether
/// the cursor sits inside a single-quoted SQL string (where `;` is
/// data, not a terminator; `''` is the escape for a literal quote and
/// toggles the flag twice, which nets out correctly).
struct StatementBuffer {
    text: String,
    in_string: bool,
}

impl StatementBuffer {
    fn new() -> Self {
        StatementBuffer { text: String::new(), in_string: false }
    }

    /// Whether a statement is currently accumulating.
    fn is_open(&self) -> bool {
        !self.text.trim().is_empty()
    }

    /// Feeds one input line; returns every statement it completed.
    fn push_line(&mut self, line: &str) -> Vec<String> {
        let mut done = Vec::new();
        for ch in line.chars() {
            if ch == '\'' {
                self.in_string = !self.in_string;
            }
            if ch == ';' && !self.in_string {
                let stmt = std::mem::take(&mut self.text);
                let stmt = stmt.trim();
                if !stmt.is_empty() {
                    done.push(stmt.to_string());
                }
            } else {
                self.text.push(ch);
            }
        }
        // The newline separates tokens split across lines.
        if !self.text.is_empty() {
            self.text.push('\n');
        }
        done
    }

    /// Drains the unterminated tail at EOF, if any.
    fn flush(&mut self) -> Option<String> {
        let tail = std::mem::take(&mut self.text);
        self.in_string = false;
        let tail = tail.trim();
        (!tail.is_empty()).then(|| tail.to_string())
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7033".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v,
                None => {
                    eprintln!("--addr requires a value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: oblidb-sql [--addr HOST:PORT]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut conn = match Connection::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let mut buffer = StatementBuffer::new();
    loop {
        print!("{}", if buffer.is_open() { "   ...> " } else { "oblidb> " });
        let _ = std::io::stdout().flush();
        let line = match lines.next() {
            Some(Ok(l)) => l,
            _ => break,
        };
        let trimmed = line.trim();
        // Dot-commands only apply between statements; inside one, a
        // leading dot is just SQL text.
        if !buffer.is_open() {
            if trimmed.is_empty() {
                continue;
            }
            match trimmed {
                ".quit" | ".exit" => return ExitCode::SUCCESS,
                ".ping" => {
                    match conn.ping() {
                        Ok(()) => println!("pong"),
                        Err(e) => println!("connection error: {e}"),
                    }
                    continue;
                }
                ".metrics" => {
                    match conn.metrics() {
                        Ok(json) => println!("{json}"),
                        Err(e) => println!("connection error: {e}"),
                    }
                    continue;
                }
                ".shutdown" => {
                    match conn.shutdown_server() {
                        Ok(()) => println!("server stopped"),
                        Err(e) => println!("connection error: {e}"),
                    }
                    return ExitCode::SUCCESS;
                }
                dot if dot.starts_with('.') => {
                    println!("unknown command: {dot}");
                    continue;
                }
                _ => {}
            }
        }
        for stmt in buffer.push_line(&line) {
            run_statement(&mut conn, &stmt);
        }
    }
    // EOF: run the unterminated tail so line-per-statement pipes still
    // work without trailing semicolons.
    if let Some(stmt) = buffer.flush() {
        run_statement(&mut conn, &stmt);
    }
    ExitCode::SUCCESS
}
