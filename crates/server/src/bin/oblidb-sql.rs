//! `oblidb-sql` — interactive shell (and pipeable batch client) for an
//! ObliDB server.
//!
//! ```text
//! oblidb-sql [--addr HOST:PORT]
//! ```
//!
//! Reads statements line-by-line from stdin — interactively with a
//! prompt when stdin is a terminal-ish session, silently when piped
//! (CI smoke drives it with a heredoc). Lines starting with `.` are
//! shell commands:
//!
//! ```text
//! .ping        liveness probe
//! .metrics     merged metrics snapshot (JSON)
//! .shutdown    stop the server gracefully, then exit
//! .quit        close this connection, leave the server running
//! ```
//!
//! Everything else is sent as one SQL statement; result sets print as
//! tab-separated rows under a header line.

use std::io::{BufRead, Write};
use std::process::ExitCode;

use oblidb_core::Value;
use oblidb_server::client::{ClientError, Connection, StatementResult};

fn render_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Text(s) => s.clone(),
    }
}

fn run_statement(conn: &mut Connection, sql: &str) {
    match conn.execute(sql) {
        Ok(StatementResult::Rows { schema, rows }) => {
            let header: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
            if !header.is_empty() {
                println!("{}", header.join("\t"));
            }
            for row in &rows {
                let cells: Vec<String> = row.iter().map(render_value).collect();
                println!("{}", cells.join("\t"));
            }
            println!("({} row{})", rows.len(), if rows.len() == 1 { "" } else { "s" });
        }
        Ok(StatementResult::RowsAffected(n)) => {
            println!("OK, {n} row{} affected", if n == 1 { "" } else { "s" })
        }
        Err(ClientError::Server(msg)) => println!("error: {msg}"),
        Err(e) => println!("connection error: {e}"),
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7033".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v,
                None => {
                    eprintln!("--addr requires a value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: oblidb-sql [--addr HOST:PORT]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut conn = match Connection::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("oblidb> ");
        let _ = std::io::stdout().flush();
        let line = match lines.next() {
            Some(Ok(l)) => l,
            _ => break,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".ping" => match conn.ping() {
                Ok(()) => println!("pong"),
                Err(e) => println!("connection error: {e}"),
            },
            ".metrics" => match conn.metrics() {
                Ok(json) => println!("{json}"),
                Err(e) => println!("connection error: {e}"),
            },
            ".shutdown" => {
                match conn.shutdown_server() {
                    Ok(()) => println!("server stopped"),
                    Err(e) => println!("connection error: {e}"),
                }
                break;
            }
            dot if dot.starts_with('.') => println!("unknown command: {dot}"),
            sql => run_statement(&mut conn, sql),
        }
    }
    ExitCode::SUCCESS
}
