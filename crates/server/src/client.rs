//! Blocking client for the ObliDB wire protocol.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use oblidb_core::{Row, Schema};

use crate::protocol::{read_response, write_request, ProtocolError, Request, Response};

/// A client-side failure: transport/decoding, an unexpected reply kind,
/// or a server-reported statement error.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or frame-decoding failure.
    Protocol(ProtocolError),
    /// The server closed the connection mid-exchange.
    Disconnected,
    /// The server answered with a frame kind the call did not expect.
    Unexpected(&'static str),
    /// The statement failed server-side; the engine's error message.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Unexpected(kind) => write!(f, "unexpected response frame: {kind}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// A statement's decoded outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// A result set (`SELECT`, `EXPLAIN`, `EXPLAIN ANALYZE`).
    Rows {
        /// Result schema.
        schema: Schema,
        /// Decoded rows.
        rows: Vec<Row>,
    },
    /// A mutation's row count.
    RowsAffected(u64),
}

/// One blocking connection to an ObliDB server.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    /// Connects to a serving front-end.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection { reader, writer: BufWriter::new(stream) })
    }

    /// One request/response exchange, untyped.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_request(&mut self.writer, req).map_err(ProtocolError::Io)?;
        match read_response(&mut self.reader)? {
            Some((resp, _)) => Ok(resp),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Executes one SQL statement; statement failures come back as
    /// [`ClientError::Server`].
    pub fn execute(&mut self, sql: &str) -> Result<StatementResult, ClientError> {
        match self.request(&Request::Statement(sql.to_string()))? {
            Response::RowSet { schema, rows } => Ok(StatementResult::Rows { schema, rows }),
            Response::RowsAffected(n) => Ok(StatementResult::RowsAffected(n)),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("statement")),
        }
    }

    /// Opens a multi-statement transaction on this connection. Until
    /// [`Connection::commit`] / [`Connection::rollback`], mutations
    /// buffer server-side and apply atomically at commit.
    pub fn begin(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Begin)? {
            Response::RowsAffected(_) => Ok(()),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("begin")),
        }
    }

    /// Commits the open transaction; returns the number of statements it
    /// applied. A failed commit aborts the transaction server-side.
    pub fn commit(&mut self) -> Result<u64, ClientError> {
        match self.request(&Request::Commit)? {
            Response::RowsAffected(n) => Ok(n),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("commit")),
        }
    }

    /// Discards the open transaction.
    pub fn rollback(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Rollback)? {
            Response::RowsAffected(_) => Ok(()),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("rollback")),
        }
    }

    /// Fetches the server's merged metrics snapshot as JSON.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(json) => Ok(json),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("metrics")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("ping")),
        }
    }

    /// Asks the server to shut down gracefully; returns once the server
    /// acknowledges.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Goodbye => Ok(()),
            _ => Err(ClientError::Unexpected("shutdown")),
        }
    }
}
