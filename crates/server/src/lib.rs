//! The ObliDB serving front-end: wire [`protocol`], TCP [`server`], and
//! blocking [`client`].
//!
//! The engine's concurrency core lives in `oblidb-core`
//! ([`oblidb_core::SharedDatabase`]): snapshot reads fork off the shared
//! store, writes serialize on the resident master, and any serial
//! schedule is statement-for-statement equivalent to a single-owner
//! engine. This crate puts a socket in front of it: one [`Session`] per
//! accepted connection, driven on the in-tree scoped thread pool, with
//! a length-prefixed binary protocol (statements in; typed row sets,
//! rows-affected counts, errors, metrics snapshots out).
//!
//! Binaries: `oblidb-serve` (the server) and `oblidb-sql` (an
//! interactive shell that also pipes cleanly for scripting).
//!
//! [`Session`]: oblidb_core::Session

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, Connection, StatementResult};
pub use protocol::{ProtocolError, Request, Response, MAX_FRAME};
pub use server::{serve, ServerConfig, ServerHandle, ServerStats};
