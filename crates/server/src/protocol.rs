//! The ObliDB wire protocol, v1 (auth-free).
//!
//! Length-prefixed binary frames over any byte stream:
//!
//! ```text
//! [u32 le: body length][body]       body[0] = tag, body[1..] = payload
//! ```
//!
//! Requests carry a statement (UTF-8 SQL) or a verb (metrics, ping,
//! shutdown); responses carry a typed result set, a rows-affected count,
//! an error message, a metrics snapshot (JSON), or a verb
//! acknowledgement. `EXPLAIN` / `EXPLAIN ANALYZE` need no special
//! framing — the engine renders them as single-column row sets.
//!
//! Result sets are self-describing: the schema rides in the frame
//! (column names, types, text widths) and every value is tagged, so a
//! client can decode without out-of-band catalog knowledge. All integers
//! are little-endian. Frames are bounded by [`MAX_FRAME`]; a peer that
//! announces a larger body is malformed and the connection should drop.
//!
//! Security note: v1 is plaintext-on-the-wire by design — it serves the
//! simulation boundary, where the interesting adversary watches *memory
//! accesses*, not sockets. A deployment-shaped front-end needs an
//! attested TLS channel first (see ROADMAP).

use std::io::{self, Read, Write};

use oblidb_core::{Column, DataType, QueryOutput, Row, Schema, Value};

/// Hard ceiling on one frame's body, header excluded (16 MiB).
pub const MAX_FRAME: usize = 16 << 20;

/// One client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute one SQL statement.
    Statement(String),
    /// Ship the server's merged metrics snapshot (JSON).
    Metrics,
    /// Liveness probe.
    Ping,
    /// Ask the server to shut down gracefully: in-flight sessions
    /// finish, then the listener stops.
    Shutdown,
    /// Open a multi-statement transaction on this connection.
    Begin,
    /// Commit the connection's open transaction atomically. Replied to
    /// with [`Response::RowsAffected`] carrying the statement count.
    Commit,
    /// Discard the connection's open transaction. Replied to with
    /// [`Response::RowsAffected`] carrying the discarded count.
    Rollback,
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A query's result set (also `EXPLAIN` output, one line per row).
    RowSet {
        /// Result schema.
        schema: Schema,
        /// Decoded rows.
        rows: Vec<Row>,
    },
    /// A mutation's row count.
    RowsAffected(u64),
    /// The statement failed; the message is the engine error's display.
    Error(String),
    /// The merged metrics snapshot, JSON-encoded.
    Metrics(String),
    /// Liveness reply.
    Pong,
    /// Shutdown acknowledged; the server closes after this frame.
    Goodbye,
}

impl Response {
    /// Builds the response for a statement result.
    pub fn from_output(out: &QueryOutput) -> Response {
        match out.rows_affected {
            Some(n) => Response::RowsAffected(n),
            None => Response::RowSet { schema: out.schema.clone(), rows: out.rows().to_vec() },
        }
    }
}

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The peer announced a body larger than [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// The frame's bytes do not decode as a known message.
    Malformed(&'static str),
    /// The frame's leading tag byte is not a known message kind.
    UnknownTag(u8),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "io: {e}"),
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame body of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtocolError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

// ---- frame transport ------------------------------------------------------

/// Writes one frame; returns the wire bytes spent (header + body).
fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<u64> {
    debug_assert!(!body.is_empty() && body.len() <= MAX_FRAME);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(4 + body.len() as u64)
}

/// Reads one frame body. `Ok(None)` means the peer closed cleanly
/// *between* frames (EOF before any header byte); EOF mid-frame is an
/// [`ProtocolError::Io`] with `UnexpectedEof`.
fn read_frame(r: &mut impl Read) -> Result<Option<(Vec<u8>, u64)>, ProtocolError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    if len == 0 {
        return Err(ProtocolError::Malformed("zero-length body"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some((body, 4 + len as u64)))
}

// ---- body cursor ----------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ProtocolError::Malformed("truncated body"))?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self, len: usize) -> Result<String, ProtocolError> {
        std::str::from_utf8(self.take(len)?)
            .map(str::to_string)
            .map_err(|_| ProtocolError::Malformed("invalid utf-8"))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes after message"))
        }
    }
}

// ---- message tags ---------------------------------------------------------

const REQ_STATEMENT: u8 = 0x01;
const REQ_METRICS: u8 = 0x02;
const REQ_PING: u8 = 0x03;
const REQ_SHUTDOWN: u8 = 0x04;
const REQ_BEGIN: u8 = 0x05;
const REQ_COMMIT: u8 = 0x06;
const REQ_ROLLBACK: u8 = 0x07;

const RESP_ROWSET: u8 = 0x81;
const RESP_ROWS_AFFECTED: u8 = 0x82;
const RESP_ERROR: u8 = 0x83;
const RESP_METRICS: u8 = 0x84;
const RESP_PONG: u8 = 0x85;
const RESP_GOODBYE: u8 = 0x86;

const TYPE_INT: u8 = 0;
const TYPE_FLOAT: u8 = 1;
const TYPE_TEXT: u8 = 2;

// ---- requests -------------------------------------------------------------

/// Encodes and writes one request; returns the wire bytes spent.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<u64> {
    let mut body = Vec::new();
    match req {
        Request::Statement(sql) => {
            body.push(REQ_STATEMENT);
            body.extend_from_slice(sql.as_bytes());
        }
        Request::Metrics => body.push(REQ_METRICS),
        Request::Ping => body.push(REQ_PING),
        Request::Shutdown => body.push(REQ_SHUTDOWN),
        Request::Begin => body.push(REQ_BEGIN),
        Request::Commit => body.push(REQ_COMMIT),
        Request::Rollback => body.push(REQ_ROLLBACK),
    }
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "statement too large"));
    }
    write_frame(w, &body)
}

/// Reads and decodes one request. `Ok(None)` on clean peer close.
pub fn read_request(r: &mut impl Read) -> Result<Option<(Request, u64)>, ProtocolError> {
    let Some((body, wire)) = read_frame(r)? else { return Ok(None) };
    let mut c = Cursor::new(&body);
    let tag = c.u8()?;
    let req = match tag {
        REQ_STATEMENT => {
            let rest = body.len() - 1;
            Request::Statement(c.string(rest)?)
        }
        REQ_METRICS => Request::Metrics,
        REQ_PING => Request::Ping,
        REQ_SHUTDOWN => Request::Shutdown,
        REQ_BEGIN => Request::Begin,
        REQ_COMMIT => Request::Commit,
        REQ_ROLLBACK => Request::Rollback,
        other => return Err(ProtocolError::UnknownTag(other)),
    };
    c.finish()?;
    Ok(Some((req, wire)))
}

// ---- responses ------------------------------------------------------------

fn encode_schema(body: &mut Vec<u8>, schema: &Schema) -> io::Result<()> {
    let ncols = u16::try_from(schema.columns.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many columns"))?;
    body.extend_from_slice(&ncols.to_le_bytes());
    for col in &schema.columns {
        match col.dtype {
            DataType::Int => body.push(TYPE_INT),
            DataType::Float => body.push(TYPE_FLOAT),
            DataType::Text(width) => {
                body.push(TYPE_TEXT);
                body.extend_from_slice(&(width as u32).to_le_bytes());
            }
        }
        let name_len = u16::try_from(col.name.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "column name too long"))?;
        body.extend_from_slice(&name_len.to_le_bytes());
        body.extend_from_slice(col.name.as_bytes());
    }
    Ok(())
}

fn encode_value(body: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Int(i) => {
            body.push(TYPE_INT);
            body.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            body.push(TYPE_FLOAT);
            body.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            body.push(TYPE_TEXT);
            body.extend_from_slice(&(s.len() as u32).to_le_bytes());
            body.extend_from_slice(s.as_bytes());
        }
    }
}

/// Encodes and writes one response; returns the wire bytes spent.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<u64> {
    let mut body = Vec::new();
    match resp {
        Response::RowSet { schema, rows } => {
            body.push(RESP_ROWSET);
            encode_schema(&mut body, schema)?;
            let nrows = u32::try_from(rows.len())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "too many rows"))?;
            body.extend_from_slice(&nrows.to_le_bytes());
            for row in rows {
                for value in row {
                    encode_value(&mut body, value);
                }
            }
        }
        Response::RowsAffected(n) => {
            body.push(RESP_ROWS_AFFECTED);
            body.extend_from_slice(&n.to_le_bytes());
        }
        Response::Error(msg) => {
            body.push(RESP_ERROR);
            body.extend_from_slice(msg.as_bytes());
        }
        Response::Metrics(json) => {
            body.push(RESP_METRICS);
            body.extend_from_slice(json.as_bytes());
        }
        Response::Pong => body.push(RESP_PONG),
        Response::Goodbye => body.push(RESP_GOODBYE),
    }
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "result set too large"));
    }
    write_frame(w, &body)
}

fn decode_schema(c: &mut Cursor<'_>) -> Result<Schema, ProtocolError> {
    let ncols = c.u16()? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let dtype = match c.u8()? {
            TYPE_INT => DataType::Int,
            TYPE_FLOAT => DataType::Float,
            TYPE_TEXT => DataType::Text(c.u32()? as usize),
            _ => return Err(ProtocolError::Malformed("unknown column type")),
        };
        let name_len = c.u16()? as usize;
        let name = c.string(name_len)?;
        columns.push(Column { name, dtype });
    }
    Ok(Schema::new(columns))
}

fn decode_value(c: &mut Cursor<'_>) -> Result<Value, ProtocolError> {
    match c.u8()? {
        TYPE_INT => Ok(Value::Int(i64::from_le_bytes(c.take(8)?.try_into().unwrap()))),
        TYPE_FLOAT => {
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(c.take(8)?.try_into().unwrap()))))
        }
        TYPE_TEXT => {
            let len = c.u32()? as usize;
            Ok(Value::Text(c.string(len)?))
        }
        _ => Err(ProtocolError::Malformed("unknown value type")),
    }
}

/// Reads and decodes one response. `Ok(None)` on clean peer close.
pub fn read_response(r: &mut impl Read) -> Result<Option<(Response, u64)>, ProtocolError> {
    let Some((body, wire)) = read_frame(r)? else { return Ok(None) };
    let mut c = Cursor::new(&body);
    let tag = c.u8()?;
    let resp = match tag {
        RESP_ROWSET => {
            let schema = decode_schema(&mut c)?;
            let nrows = c.u32()? as usize;
            // Guard the pre-allocation: every row carries at least one
            // tagged byte per column, so an honest frame bounds nrows.
            if nrows > MAX_FRAME {
                return Err(ProtocolError::Malformed("row count exceeds frame bound"));
            }
            let mut rows = Vec::with_capacity(nrows.min(1 << 16));
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(schema.columns.len());
                for _ in 0..schema.columns.len() {
                    row.push(decode_value(&mut c)?);
                }
                rows.push(row);
            }
            Response::RowSet { schema, rows }
        }
        RESP_ROWS_AFFECTED => Response::RowsAffected(c.u64()?),
        RESP_ERROR => {
            let rest = body.len() - 1;
            Response::Error(c.string(rest)?)
        }
        RESP_METRICS => {
            let rest = body.len() - 1;
            Response::Metrics(c.string(rest)?)
        }
        RESP_PONG => Response::Pong,
        RESP_GOODBYE => Response::Goodbye,
        other => return Err(ProtocolError::UnknownTag(other)),
    };
    c.finish()?;
    Ok(Some((resp, wire)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        let wrote = write_request(&mut wire, &req).unwrap();
        assert_eq!(wrote as usize, wire.len());
        let (back, read) = read_request(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(back, req);
        assert_eq!(read, wrote);
    }

    fn roundtrip_response(resp: Response) {
        let mut wire = Vec::new();
        let wrote = write_response(&mut wire, &resp).unwrap();
        assert_eq!(wrote as usize, wire.len());
        let (back, read) = read_response(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(back, resp);
        assert_eq!(read, wrote);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Statement("SELECT * FROM t WHERE k = 1".into()));
        roundtrip_request(Request::Statement(String::new()));
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Begin);
        roundtrip_request(Request::Commit);
        roundtrip_request(Request::Rollback);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::RowSet {
            schema: Schema::new(vec![
                Column { name: "id".into(), dtype: DataType::Int },
                Column { name: "score".into(), dtype: DataType::Float },
                Column { name: "name".into(), dtype: DataType::Text(12) },
            ]),
            rows: vec![
                vec![Value::Int(-7), Value::Float(2.5), Value::Text("ada".into())],
                vec![
                    Value::Int(i64::MAX),
                    Value::Float(f64::MIN_POSITIVE),
                    Value::Text(String::new()),
                ],
            ],
        });
        roundtrip_response(Response::RowSet { schema: Schema::new(vec![]), rows: vec![] });
        roundtrip_response(Response::RowsAffected(0));
        roundtrip_response(Response::RowsAffected(u64::MAX));
        roundtrip_response(Response::Error("no such table: t".into()));
        roundtrip_response(Response::Metrics("{\"counters\":{}}".into()));
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Goodbye);
    }

    #[test]
    fn nan_floats_survive_by_bits() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            &Response::RowSet {
                schema: Schema::new(vec![Column { name: "f".into(), dtype: DataType::Float }]),
                rows: vec![vec![Value::Float(f64::NAN)]],
            },
        )
        .unwrap();
        let (back, _) = read_response(&mut wire.as_slice()).unwrap().unwrap();
        match back {
            Response::RowSet { rows, .. } => match rows[0][0] {
                Value::Float(f) => assert!(f.is_nan()),
                _ => panic!("wrong type"),
            },
            _ => panic!("wrong response"),
        }
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        assert!(read_request(&mut [].as_slice()).unwrap().is_none());
        assert!(read_response(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn eof_inside_header_or_body_is_an_error() {
        let err = read_request(&mut [0x05u8, 0x00].as_slice()).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)), "{err}");
        // Header promises 5 bytes, body delivers 2.
        let mut partial = 5u32.to_le_bytes().to_vec();
        partial.extend_from_slice(&[REQ_STATEMENT, b'S']);
        let err = read_request(&mut partial.as_slice()).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)), "{err}");
    }

    #[test]
    fn oversized_and_empty_frames_are_rejected() {
        let mut oversized = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        oversized.push(REQ_PING);
        assert!(matches!(
            read_request(&mut oversized.as_slice()).unwrap_err(),
            ProtocolError::FrameTooLarge(_)
        ));
        let empty = 0u32.to_le_bytes();
        assert!(matches!(
            read_request(&mut empty.as_slice()).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        let mut frame = 1u32.to_le_bytes().to_vec();
        frame.push(0x7f);
        assert!(matches!(
            read_request(&mut frame.as_slice()).unwrap_err(),
            ProtocolError::UnknownTag(0x7f)
        ));
        // A Ping with a trailing byte is malformed, not silently accepted.
        let mut frame = 2u32.to_le_bytes().to_vec();
        frame.extend_from_slice(&[REQ_PING, 0xff]);
        assert!(matches!(
            read_request(&mut frame.as_slice()).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn non_utf8_statements_are_rejected() {
        let mut frame = 3u32.to_le_bytes().to_vec();
        frame.extend_from_slice(&[REQ_STATEMENT, 0xff, 0xfe]);
        assert!(matches!(
            read_request(&mut frame.as_slice()).unwrap_err(),
            ProtocolError::Malformed(_)
        ));
    }

    #[test]
    fn truncated_rowset_bodies_are_rejected() {
        // Announce 2 columns but stop after the first: every prefix
        // truncation must surface Malformed, never panic.
        let full = {
            let mut wire = Vec::new();
            write_response(
                &mut wire,
                &Response::RowSet {
                    schema: Schema::new(vec![Column { name: "k".into(), dtype: DataType::Int }]),
                    rows: vec![vec![Value::Int(9)]],
                },
            )
            .unwrap();
            wire
        };
        for cut in 5..full.len() {
            let mut frame = ((cut - 4) as u32).to_le_bytes().to_vec();
            frame.extend_from_slice(&full[4..cut]);
            let r = read_response(&mut frame.as_slice());
            assert!(r.is_err(), "prefix of {cut} bytes decoded");
        }
    }
}
