//! Session-per-connection TCP server over a [`SharedDatabase`].
//!
//! One accept thread owns the listener; each accepted connection becomes
//! a [`Session`] driven on the in-tree [`ThreadPool`]'s scoped mode, so
//! concurrency is bounded at the worker count and excess connections
//! queue at submit time (backpressure, not thread explosion). Statement
//! routing — snapshot forks for flat reads, the exclusive master for
//! everything else — lives entirely in the core layer; this layer only
//! frames bytes and counts them.
//!
//! Shutdown is graceful and cooperative: a `Shutdown` frame (or
//! [`ServerHandle::shutdown`]) raises a flag; the accept loop stops
//! taking connections, every handler notices at its next read-timeout
//! tick, finishes its in-flight statement, and closes. The pool scope
//! then joins all handlers before the server thread returns its stats.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use oblidb_core::{EpochConfig, SharedDatabase};
use oblidb_enclave::{EnclaveMemory, ThreadPool};
use oblidb_telemetry::Counter;
use oblidb_txn::{TxnManager, TxnOutcome, TxnSession};

use crate::protocol::{read_request, write_response, ProtocolError, Request, Response};

/// How long a handler blocks in `read` before re-checking the shutdown
/// flag. Bounds shutdown latency; costs one syscall per tick per idle
/// connection.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Connection-handler worker count (scoped pool slots). Connections
    /// beyond this queue at accept time.
    pub workers: usize,
    /// Group-commit epoch schedule. `Some` must match the engine's
    /// [`oblidb_core::DbConfig::epoch`]; the server then runs a
    /// background [`oblidb_txn::EpochFlusher`] and seals the final epoch
    /// at shutdown. `None` serves with per-statement durability.
    pub epoch: Option<EpochConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { addr: "127.0.0.1:0".to_string(), workers: 4, epoch: None }
    }
}

/// Aggregate counters the server thread returns at shutdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Statements executed across all connections.
    pub statements: u64,
    /// Statements that returned an error frame.
    pub errors: u64,
    /// Request bytes read off the wire.
    pub bytes_in: u64,
    /// Response bytes written to the wire.
    pub bytes_out: u64,
}

struct Lifecycle {
    shutdown: AtomicBool,
    connections: AtomicU64,
    statements: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl Lifecycle {
    fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            statements: self.statements.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// A running server: its bound address and the handle to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    lifecycle: Arc<Lifecycle>,
    thread: Option<std::thread::JoinHandle<ServerStats>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raises the shutdown flag without waiting — in-flight sessions
    /// finish on their own time; [`ServerHandle::shutdown`] joins them.
    pub fn request_shutdown(&self) {
        self.lifecycle.shutdown.store(true, Ordering::Relaxed);
    }

    /// Stops the server gracefully and returns its lifetime stats:
    /// raises the flag, then joins the accept thread, which itself joins
    /// every connection handler.
    pub fn shutdown(mut self) -> ServerStats {
        self.request_shutdown();
        self.join()
    }

    /// Blocks until the server stops on its own — i.e. until a client's
    /// shutdown verb (or [`ServerHandle::request_shutdown`] from another
    /// thread) raises the flag. Returns the lifetime stats.
    pub fn wait(mut self) -> ServerStats {
        self.join()
    }

    fn join(&mut self) -> ServerStats {
        match self.thread.take() {
            Some(t) => t.join().unwrap_or_else(|_| self.lifecycle.stats()),
            None => self.lifecycle.stats(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.request_shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds and starts serving `db` in a background thread. Returns once
/// the listener is bound, so [`ServerHandle::addr`] is immediately
/// connectable.
pub fn serve<M>(db: SharedDatabase<M>, config: ServerConfig) -> io::Result<ServerHandle>
where
    M: EnclaveMemory + Send + 'static,
{
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let lifecycle = Arc::new(Lifecycle {
        shutdown: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        statements: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        bytes_in: AtomicU64::new(0),
        bytes_out: AtomicU64::new(0),
    });
    let workers = config.workers.max(1);
    let thread = {
        let lifecycle = Arc::clone(&lifecycle);
        std::thread::Builder::new().name("oblidb-accept".to_string()).spawn(move || {
            let manager = TxnManager::new(db, config.epoch);
            // The ticker closes epochs on time even when no statement
            // arrives to trip the cap; dropped (joined) before the final
            // flush below.
            let flusher = config.epoch.is_some().then(|| manager.spawn_flusher());
            let pool = ThreadPool::new(workers);
            pool.scoped(|scope| {
                while !lifecycle.shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            lifecycle.connections.fetch_add(1, Ordering::Relaxed);
                            oblidb_telemetry::counter_add(Counter::ServerConnections, 1);
                            let session = manager.session();
                            let lifecycle = Arc::clone(&lifecycle);
                            // submit blocks when all worker slots are
                            // busy: natural backpressure. A handler
                            // panic must not tear down the scope (that
                            // would abort every other connection), so
                            // it is caught and the connection dropped.
                            scope.submit(move || {
                                let r = catch_unwind(AssertUnwindSafe(|| {
                                    handle_connection(stream, session, &lifecycle)
                                }));
                                if r.is_err() {
                                    lifecycle.errors.fetch_add(1, Ordering::Relaxed);
                                    oblidb_telemetry::counter_add(Counter::ServerErrors, 1);
                                }
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
            });
            // All handlers have joined: seal the open epoch so the WAL
            // never ends mid-epoch across a clean shutdown.
            drop(flusher);
            let _ = manager.flush();
            lifecycle.stats()
        })?
    };
    Ok(ServerHandle { addr, lifecycle, thread: Some(thread) })
}

/// A reader that converts read timeouts into shutdown checks: retries
/// `WouldBlock`/`TimedOut` until bytes arrive or the flag is raised, so
/// frame decoding never observes a timeout mid-frame (restarting a
/// frame would lose already-consumed header bytes).
struct PatientReader<'a, R> {
    inner: R,
    lifecycle: &'a Lifecycle,
}

impl<R: io::Read> io::Read for PatientReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.lifecycle.shutdown.load(Ordering::Relaxed) {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "server shutting down",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

/// Maps a transaction outcome to its wire reply. Control verbs answer
/// with a rows-affected count: `0` for `BEGIN`/`ROLLBACK`/a buffered
/// mutation, the applied statement count for `COMMIT`.
fn outcome_response(outcome: &TxnOutcome) -> Response {
    match outcome {
        TxnOutcome::Statement(out) => Response::from_output(out),
        TxnOutcome::Committed { statements } => Response::RowsAffected(*statements),
        TxnOutcome::Buffered | TxnOutcome::Begun | TxnOutcome::RolledBack { .. } => {
            Response::RowsAffected(0)
        }
    }
}

/// Drives one connection: frame in, statement through the session,
/// frame out — until the peer closes, errors, or shutdown is raised.
/// A connection dying mid-transaction aborts it (the session's drop
/// discards the buffer).
fn handle_connection<M: EnclaveMemory + Send>(
    stream: TcpStream,
    mut session: TxnSession<M>,
    lifecycle: &Lifecycle,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let cloned = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = PatientReader { inner: io::BufReader::new(cloned), lifecycle };
    let mut writer = io::BufWriter::new(stream);
    loop {
        let (request, wire_in) = match read_request(&mut reader) {
            Ok(Some(frame)) => frame,
            // Peer closed between frames: a clean disconnect.
            Ok(None) => return,
            // Shutdown raised while waiting for the next frame.
            Err(ProtocolError::Io(e)) if e.kind() == io::ErrorKind::ConnectionAborted => return,
            // Malformed frame: answer if the stream still writes, then
            // drop the connection — resynchronizing is not possible.
            Err(e) => {
                lifecycle.errors.fetch_add(1, Ordering::Relaxed);
                oblidb_telemetry::counter_add(Counter::ServerErrors, 1);
                let _ = write_response(&mut writer, &Response::Error(e.to_string()));
                return;
            }
        };
        lifecycle.bytes_in.fetch_add(wire_in, Ordering::Relaxed);
        oblidb_telemetry::counter_add(Counter::ServerBytesIn, wire_in);
        let (response, done) = match request {
            Request::Statement(sql) => {
                lifecycle.statements.fetch_add(1, Ordering::Relaxed);
                oblidb_telemetry::counter_add(Counter::ServerStatements, 1);
                match session.execute(&sql) {
                    Ok(outcome) => (outcome_response(&outcome), false),
                    Err(e) => {
                        lifecycle.errors.fetch_add(1, Ordering::Relaxed);
                        oblidb_telemetry::counter_add(Counter::ServerErrors, 1);
                        (Response::Error(e.to_string()), false)
                    }
                }
            }
            Request::Begin | Request::Commit | Request::Rollback => {
                lifecycle.statements.fetch_add(1, Ordering::Relaxed);
                oblidb_telemetry::counter_add(Counter::ServerStatements, 1);
                let result = match request {
                    Request::Begin => session.begin(),
                    Request::Commit => session.commit(),
                    _ => session.rollback(),
                };
                match result {
                    Ok(outcome) => (outcome_response(&outcome), false),
                    Err(e) => {
                        lifecycle.errors.fetch_add(1, Ordering::Relaxed);
                        oblidb_telemetry::counter_add(Counter::ServerErrors, 1);
                        (Response::Error(e.to_string()), false)
                    }
                }
            }
            Request::Metrics => {
                // The merged engine snapshot plus this connection's own
                // counters — the per-session fold the caller asked for.
                let mut snap = session.database().metrics_snapshot();
                let s = session.stats();
                snap.push_counter("session_id", s.id);
                snap.push_counter("session_statements", s.statements);
                snap.push_counter("session_errors", s.errors);
                let server = lifecycle.stats();
                snap.push_counter("server_lifetime_connections", server.connections);
                snap.push_counter("server_lifetime_statements", server.statements);
                snap.push_counter("server_lifetime_errors", server.errors);
                snap.push_counter("server_lifetime_bytes_in", server.bytes_in);
                snap.push_counter("server_lifetime_bytes_out", server.bytes_out);
                (Response::Metrics(snap.to_json()), false)
            }
            Request::Ping => (Response::Pong, false),
            Request::Shutdown => {
                lifecycle.shutdown.store(true, Ordering::Relaxed);
                (Response::Goodbye, true)
            }
        };
        match write_response(&mut writer, &response) {
            Ok(wire_out) => {
                lifecycle.bytes_out.fetch_add(wire_out, Ordering::Relaxed);
                oblidb_telemetry::counter_add(Counter::ServerBytesOut, wire_out);
            }
            Err(_) => return,
        }
        if done {
            return;
        }
    }
}
