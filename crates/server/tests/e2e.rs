//! End-to-end serving tests: real TCP sockets, concurrent connections,
//! metrics/ping/shutdown verbs, and wire-level abuse.

use std::io::{Read, Write};
use std::net::TcpStream;

use oblidb_core::{DbConfig, EpochConfig, SharedDatabase, Value, WalConfig};
use oblidb_enclave::Host;
use oblidb_server::client::{ClientError, Connection, StatementResult};
use oblidb_server::server::{serve, ServerConfig};

fn start_server(workers: usize) -> (oblidb_server::server::ServerHandle, String) {
    let db = SharedDatabase::new(Host::new(), DbConfig::default()).unwrap();
    let config = ServerConfig { addr: "127.0.0.1:0".to_string(), workers, epoch: None };
    let handle = serve(db, config).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
fn statements_roundtrip_over_tcp() {
    let (handle, addr) = start_server(2);
    let mut conn = Connection::connect(&addr).unwrap();
    conn.ping().unwrap();
    // DDL is not a mutation statement: it comes back as an empty set.
    let r = conn.execute("CREATE TABLE t (k INT, v INT) STORAGE = FLAT CAPACITY 64").unwrap();
    assert!(matches!(r, StatementResult::Rows { ref rows, .. } if rows.is_empty()), "{r:?}");
    for i in 0..10 {
        let r = conn.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 3)).unwrap();
        assert_eq!(r, StatementResult::RowsAffected(1));
    }
    match conn.execute("SELECT v FROM t WHERE k = 4").unwrap() {
        StatementResult::Rows { schema, rows } => {
            assert_eq!(schema.columns.len(), 1);
            assert_eq!(rows, vec![vec![Value::Int(12)]]);
        }
        other => panic!("expected rows, got {other:?}"),
    }
    // EXPLAIN rides the same frame as any result set.
    match conn.execute("EXPLAIN SELECT v FROM t WHERE k = 4").unwrap() {
        StatementResult::Rows { rows, .. } => assert!(!rows.is_empty()),
        other => panic!("expected plan rows, got {other:?}"),
    }
    // Statement errors come back as error frames, connection stays up.
    match conn.execute("SELECT v FROM missing") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("missing"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    conn.ping().unwrap();
    let stats = handle.shutdown();
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.errors, 1);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
}

#[test]
fn concurrent_connections_share_one_store() {
    let (handle, addr) = start_server(4);
    let mut setup = Connection::connect(&addr).unwrap();
    setup.execute("CREATE TABLE t (k INT, v INT) STORAGE = FLAT CAPACITY 256").unwrap();
    const CLIENTS: i64 = 4;
    const PER_CLIENT: i64 = 8;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut conn = Connection::connect(&addr).unwrap();
                for i in 0..PER_CLIENT {
                    let k = c * PER_CLIENT + i;
                    conn.execute(&format!("INSERT INTO t VALUES ({k}, {k})")).unwrap();
                    match conn.execute("SELECT COUNT(*) FROM t").unwrap() {
                        StatementResult::Rows { rows, .. } => assert_eq!(rows.len(), 1),
                        other => panic!("expected count, got {other:?}"),
                    }
                }
            });
        }
    });
    match setup.execute("SELECT COUNT(*) FROM t").unwrap() {
        StatementResult::Rows { rows, .. } => {
            assert_eq!(rows, vec![vec![Value::Int(CLIENTS * PER_CLIENT)]]);
        }
        other => panic!("expected count, got {other:?}"),
    }
    let json = setup.metrics().unwrap();
    assert!(json.contains("db_sessions"), "metrics json missing serving counters: {json}");
    assert!(json.contains("session_statements"), "metrics json missing session fold: {json}");
    let stats = handle.shutdown();
    assert_eq!(stats.connections, CLIENTS as u64 + 1);
    assert_eq!(stats.statements, (CLIENTS * PER_CLIENT * 2 + 2) as u64);
}

#[test]
fn transactions_over_the_wire() {
    // Epoch-scheduled engine: commits pool into group fsyncs; clients
    // drive transactions with the dedicated wire verbs.
    let epoch = EpochConfig { duration_ms: 2, max_statements: 64 };
    let db = SharedDatabase::new(
        Host::new(),
        DbConfig { wal: Some(WalConfig::default()), epoch: Some(epoch), ..DbConfig::default() },
    )
    .unwrap();
    let config = ServerConfig { addr: "127.0.0.1:0".to_string(), workers: 2, epoch: Some(epoch) };
    let handle = serve(db, config).unwrap();
    let addr = handle.addr().to_string();

    let mut a = Connection::connect(&addr).unwrap();
    let mut b = Connection::connect(&addr).unwrap();
    a.execute("CREATE TABLE t (k INT) STORAGE = FLAT CAPACITY 64").unwrap();

    // Buffered writes are invisible to other connections until commit.
    a.begin().unwrap();
    assert_eq!(a.execute("INSERT INTO t VALUES (1)").unwrap(), StatementResult::RowsAffected(0));
    a.execute("INSERT INTO t VALUES (2)").unwrap();
    match b.execute("SELECT COUNT(*) FROM t").unwrap() {
        StatementResult::Rows { rows, .. } => assert_eq!(rows, vec![vec![Value::Int(0)]]),
        other => panic!("expected count, got {other:?}"),
    }
    assert_eq!(a.commit().unwrap(), 2);
    match b.execute("SELECT COUNT(*) FROM t").unwrap() {
        StatementResult::Rows { rows, .. } => assert_eq!(rows, vec![vec![Value::Int(2)]]),
        other => panic!("expected count, got {other:?}"),
    }

    // SQL-spelled control verbs work identically over the wire.
    assert_eq!(a.execute("BEGIN").unwrap(), StatementResult::RowsAffected(0));
    a.execute("INSERT INTO t VALUES (3)").unwrap();
    assert_eq!(a.execute("ROLLBACK").unwrap(), StatementResult::RowsAffected(0));
    match a.execute("SELECT COUNT(*) FROM t").unwrap() {
        StatementResult::Rows { rows, .. } => assert_eq!(rows, vec![vec![Value::Int(2)]]),
        other => panic!("expected count, got {other:?}"),
    }

    // Control verbs without an open transaction are server errors, and
    // the connection survives them.
    assert!(matches!(a.commit(), Err(ClientError::Server(_))));
    assert!(matches!(a.rollback(), Err(ClientError::Server(_))));
    a.ping().unwrap();
    handle.shutdown();
}

#[test]
fn shutdown_verb_stops_the_server() {
    let (handle, addr) = start_server(2);
    let mut conn = Connection::connect(&addr).unwrap();
    conn.execute("CREATE TABLE t (k INT) STORAGE = FLAT CAPACITY 16").unwrap();
    conn.shutdown_server().unwrap();
    // The accept thread exits on its own; wait() must return promptly.
    let stats = handle.wait();
    assert_eq!(stats.connections, 1);
    // New connections are refused (or accepted-then-dropped, depending
    // on backlog timing) — either way no statement succeeds.
    if let Ok(mut c) = Connection::connect(&addr) {
        assert!(c.ping().is_err());
    }
}

#[test]
fn malformed_frames_get_an_error_and_a_disconnect() {
    let (handle, addr) = start_server(2);
    // Oversized announced length.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();
    // The server answered with an error frame before closing.
    assert!(buf.len() > 5, "expected an error frame, got {} bytes", buf.len());
    assert_eq!(buf[4], 0x83, "expected error tag");
    // Unknown tag.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(&1u32.to_le_bytes()).unwrap();
    raw.write_all(&[0x7f]).unwrap();
    raw.flush().unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).unwrap();
    assert!(buf.len() > 5 && buf[4] == 0x83);
    // The server survives the abuse.
    let mut conn = Connection::connect(&addr).unwrap();
    conn.ping().unwrap();
    let stats = handle.shutdown();
    assert_eq!(stats.errors, 2);
}
