//! Sealed block storage: the integrity layer of ObliDB.
//!
//! Everything ObliDB stores outside the enclave is encrypted and MACed
//! (paper §3): each sealed block binds, through the AEAD's associated data,
//!
//! 1. **which block it is** (region + block index) — so the OS cannot
//!    shuffle or substitute blocks,
//! 2. **which revision it is** (a per-block counter kept *inside* the
//!    enclave) — so the OS cannot roll a block back to an earlier state,
//!
//! and each region uses its own derived key, so blocks cannot migrate
//! between tables. Any violation surfaces as
//! [`StorageError::TamperDetected`].
//!
//! Layout of a sealed block: `nonce (12) ‖ ciphertext (payload) ‖ tag (16)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use oblidb_crypto::aead::{self, AeadKey, Nonce, NONCE_LEN, TAG_LEN};
use oblidb_enclave::{EnclaveMemory, HostError, RegionId};

/// Extra bytes a sealed block occupies beyond its plaintext payload.
pub const SEAL_OVERHEAD: usize = NONCE_LEN + TAG_LEN;

/// Errors from the sealed-storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// The untrusted host failed the operation (bounds, unknown region...).
    Host(HostError),
    /// Authentication failed: the block was tampered with, moved, replayed,
    /// or rolled back by the untrusted OS.
    TamperDetected {
        /// Region of the offending block.
        region: RegionId,
        /// Index of the offending block.
        index: u64,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Host(e) => write!(f, "host error: {e}"),
            StorageError::TamperDetected { region, index } => {
                write!(f, "integrity violation at block {index} of region {region:?}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<HostError> for StorageError {
    fn from(e: HostError) -> Self {
        StorageError::Host(e)
    }
}

/// An encrypted, integrity-protected block region in untrusted memory.
///
/// Trusted state (kept "inside the enclave"): the AEAD key, the per-block
/// revision numbers, and the nonce counter. Everything else lives in the
/// [`Host`].
pub struct SealedRegion {
    region: RegionId,
    key: AeadKey,
    payload_len: usize,
    write_counter: u64,
    revisions: Vec<u64>,
    scratch: Vec<u8>,
}

impl SealedRegion {
    /// Allocates a region of `blocks` sealed blocks, each carrying
    /// `payload_len` plaintext bytes, and initializes every block to an
    /// encryption of zeros so the region is uniformly unreadable from
    /// outside and every block is readable from inside.
    pub fn create<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        blocks: usize,
        payload_len: usize,
    ) -> Result<Self, StorageError> {
        let region = host.alloc_region(blocks, payload_len + SEAL_OVERHEAD);
        let mut this = Self {
            region,
            key,
            payload_len,
            write_counter: 0,
            revisions: vec![0; blocks],
            scratch: vec![0u8; payload_len + SEAL_OVERHEAD],
        };
        let zeros = vec![0u8; payload_len];
        for i in 0..blocks {
            this.write(host, i as u64, &zeros)?;
        }
        Ok(this)
    }

    /// The underlying host region (public identity).
    pub fn region_id(&self) -> RegionId {
        self.region
    }

    /// Number of blocks.
    pub fn len(&self) -> u64 {
        self.revisions.len() as u64
    }

    /// True when the region holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.revisions.is_empty()
    }

    /// Plaintext payload length per block.
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Reads and authenticates a block, returning its plaintext payload.
    ///
    /// The returned slice borrows this region's scratch buffer; copy it out
    /// before the next storage call.
    pub fn read<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        index: u64,
    ) -> Result<&[u8], StorageError> {
        let revision = *self.revisions.get(index as usize).ok_or(HostError::OutOfBounds {
            region: self.region,
            index,
            len: self.len(),
        })?;
        let retains = host.retains_payloads();
        let sealed = host.read(self.region, index)?;
        if !retains {
            // Payload-free substrate (e.g. `CountingMemory`): the boundary
            // crossing above is what the cost model observes; synthesize
            // zeroed plaintext in place of decryption. Oblivious callers'
            // access patterns are payload-independent, so counts match.
            self.scratch.clear();
            self.scratch.resize(NONCE_LEN + self.payload_len, 0);
            return Ok(&self.scratch[NONCE_LEN..NONCE_LEN + self.payload_len]);
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(sealed);

        let (nonce_bytes, rest) = self.scratch.split_at_mut(NONCE_LEN);
        let (ciphertext, tag) = rest.split_at_mut(self.payload_len);
        let nonce = Nonce((&*nonce_bytes).try_into().expect("nonce length"));
        let tag: [u8; TAG_LEN] = (&*tag).try_into().expect("tag length");
        let mut aad = [0u8; 16];
        aad[..8].copy_from_slice(&index.to_le_bytes());
        aad[8..].copy_from_slice(&revision.to_le_bytes());

        aead::open(&self.key, &nonce, &aad, ciphertext, &tag)
            .map_err(|_| StorageError::TamperDetected { region: self.region, index })?;
        Ok(&self.scratch[NONCE_LEN..NONCE_LEN + self.payload_len])
    }

    /// Seals and writes a block, bumping its revision.
    ///
    /// Every write re-randomizes the ciphertext (fresh nonce), so a dummy
    /// write — writing back exactly what was read — is indistinguishable
    /// from a real one, the property all the paper's operators rely on.
    pub fn write<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        index: u64,
        payload: &[u8],
    ) -> Result<(), StorageError> {
        assert_eq!(payload.len(), self.payload_len, "payload length mismatch");
        let len = self.len();
        let slot = self.revisions.get_mut(index as usize).ok_or(HostError::OutOfBounds {
            region: self.region,
            index,
            len,
        })?;
        *slot += 1;
        let revision = *slot;

        self.write_counter += 1;
        if !host.retains_payloads() {
            // Payload-free substrate: the block is dropped on arrival, so
            // sealing it would only burn AEAD cycles (the dominant cost in
            // every operator). Ship a zeroed sealed-size buffer; revision
            // and counter bookkeeping above stay identical.
            self.scratch.clear();
            self.scratch.resize(self.payload_len + SEAL_OVERHEAD, 0);
            host.write(self.region, index, &self.scratch)?;
            return Ok(());
        }
        let nonce = Nonce::from_parts(self.region.0, self.write_counter);
        let mut aad = [0u8; 16];
        aad[..8].copy_from_slice(&index.to_le_bytes());
        aad[8..].copy_from_slice(&revision.to_le_bytes());

        self.scratch.clear();
        self.scratch.extend_from_slice(&nonce.0);
        self.scratch.extend_from_slice(payload);
        let ct_range = NONCE_LEN..NONCE_LEN + self.payload_len;
        let tag = aead::seal(&self.key, &nonce, &aad, &mut self.scratch[ct_range]);
        self.scratch.extend_from_slice(&tag);
        host.write(self.region, index, &self.scratch)?;
        Ok(())
    }

    /// Grows the region to `new_blocks`, sealing zeroed payloads into the
    /// new tail.
    pub fn grow<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        new_blocks: usize,
    ) -> Result<(), StorageError> {
        let old = self.revisions.len();
        if new_blocks <= old {
            return Ok(());
        }
        host.grow_region(self.region, new_blocks)?;
        self.revisions.resize(new_blocks, 0);
        let zeros = vec![0u8; self.payload_len];
        for i in old..new_blocks {
            self.write(host, i as u64, &zeros)?;
        }
        Ok(())
    }

    /// Releases the untrusted allocation.
    pub fn free<M: EnclaveMemory>(self, host: &mut M) {
        host.free_region(self.region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_enclave::Host;

    fn setup(blocks: usize, payload: usize) -> (Host, SealedRegion) {
        let mut host = Host::new();
        let region = SealedRegion::create(&mut host, AeadKey([7u8; 32]), blocks, payload).unwrap();
        (host, region)
    }

    #[test]
    fn roundtrip() {
        let (mut host, mut r) = setup(4, 32);
        let data = [0xABu8; 32];
        r.write(&mut host, 1, &data).unwrap();
        assert_eq!(r.read(&mut host, 1).unwrap(), &data);
    }

    #[test]
    fn fresh_region_reads_zeros() {
        let (mut host, mut r) = setup(3, 16);
        assert_eq!(r.read(&mut host, 2).unwrap(), &[0u8; 16]);
    }

    #[test]
    fn rewrites_are_rerandomized() {
        // A dummy write (same plaintext) must change the ciphertext.
        let (mut host, mut r) = setup(2, 16);
        let data = [5u8; 16];
        r.write(&mut host, 0, &data).unwrap();
        let sealed1 = host.adversary_snapshot(r.region_id(), 0).unwrap();
        r.write(&mut host, 0, &data).unwrap();
        let sealed2 = host.adversary_snapshot(r.region_id(), 0).unwrap();
        assert_ne!(sealed1, sealed2);
        assert_eq!(r.read(&mut host, 0).unwrap(), &data);
    }

    #[test]
    fn bit_flip_detected() {
        let (mut host, mut r) = setup(2, 16);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        let rid = r.region_id();
        host.adversary_corrupt(rid, 0, |b| b[NONCE_LEN] ^= 1);
        assert_eq!(
            r.read(&mut host, 0).err(),
            Some(StorageError::TamperDetected { region: rid, index: 0 })
        );
    }

    #[test]
    fn nonce_tamper_detected() {
        let (mut host, mut r) = setup(2, 16);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        host.adversary_corrupt(r.region_id(), 0, |b| b[0] ^= 1);
        assert!(matches!(r.read(&mut host, 0), Err(StorageError::TamperDetected { .. })));
    }

    #[test]
    fn tag_tamper_detected() {
        let (mut host, mut r) = setup(2, 16);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        host.adversary_corrupt(r.region_id(), 0, |b| {
            let last = b.len() - 1;
            b[last] ^= 0x80;
        });
        assert!(matches!(r.read(&mut host, 0), Err(StorageError::TamperDetected { .. })));
    }

    #[test]
    fn block_shuffle_detected() {
        // Swapping two validly sealed blocks must fail: the index is bound
        // into the AAD.
        let (mut host, mut r) = setup(2, 16);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        r.write(&mut host, 1, &[2u8; 16]).unwrap();
        host.adversary_swap(r.region_id(), 0, 1);
        assert!(matches!(r.read(&mut host, 0), Err(StorageError::TamperDetected { .. })));
        assert!(matches!(r.read(&mut host, 1), Err(StorageError::TamperDetected { .. })));
    }

    #[test]
    fn rollback_detected() {
        // Replaying an older (validly sealed) version of a block must fail:
        // the revision number in the enclave has moved on.
        let (mut host, mut r) = setup(2, 16);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        let old = host.adversary_snapshot(r.region_id(), 0).unwrap();
        r.write(&mut host, 0, &[2u8; 16]).unwrap();
        let rid = r.region_id();
        host.adversary_restore(rid, 0, old);
        assert_eq!(
            r.read(&mut host, 0).err(),
            Some(StorageError::TamperDetected { region: rid, index: 0 })
        );
    }

    #[test]
    fn cross_region_block_transplant_detected() {
        // A block sealed for one table cannot be planted into another:
        // regions use distinct keys.
        let mut host = Host::new();
        let mut a = SealedRegion::create(&mut host, AeadKey([1u8; 32]), 2, 16).unwrap();
        let mut b = SealedRegion::create(&mut host, AeadKey([2u8; 32]), 2, 16).unwrap();
        a.write(&mut host, 0, &[9u8; 16]).unwrap();
        let stolen = host.adversary_snapshot(a.region_id(), 0).unwrap();
        host.adversary_restore(b.region_id(), 0, stolen);
        assert!(matches!(b.read(&mut host, 0), Err(StorageError::TamperDetected { .. })));
    }

    #[test]
    fn grow_preserves_and_extends() {
        let (mut host, mut r) = setup(2, 8);
        r.write(&mut host, 1, &[3u8; 8]).unwrap();
        r.grow(&mut host, 5).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.read(&mut host, 1).unwrap(), &[3u8; 8]);
        assert_eq!(r.read(&mut host, 4).unwrap(), &[0u8; 8]);
    }

    #[test]
    fn sealed_block_size_is_payload_plus_overhead() {
        let (host, r) = setup(1, 100);
        assert_eq!(host.region_block_size(r.region_id()).unwrap(), 100 + SEAL_OVERHEAD);
    }

    #[test]
    fn out_of_bounds_write_errors() {
        let (mut host, mut r) = setup(2, 8);
        assert!(matches!(r.write(&mut host, 7, &[0u8; 8]), Err(StorageError::Host(_))));
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let (mut host, mut r) = setup(1, 16);
        let secret = *b"TOPSECRET_VALUE!";
        r.write(&mut host, 0, &secret).unwrap();
        let sealed = host.adversary_snapshot(r.region_id(), 0).unwrap();
        // The plaintext must not appear anywhere in the sealed bytes.
        assert!(!sealed.windows(4).any(|w| w == &secret[..4]));
    }
}
