//! Sealed block storage: the integrity layer of ObliDB.
//!
//! Everything ObliDB stores outside the enclave is encrypted and MACed
//! (paper §3): each sealed block binds, through the AEAD's associated data,
//!
//! 1. **which block it is** (region + block index) — so the OS cannot
//!    shuffle or substitute blocks,
//! 2. **which revision it is** (a per-block counter kept *inside* the
//!    enclave) — so the OS cannot roll a block back to an earlier state,
//!
//! and each region uses its own derived key, so blocks cannot migrate
//! between tables. Any violation surfaces as
//! [`StorageError::TamperDetected`].
//!
//! Layout of a sealed block: `nonce (12) ‖ ciphertext (payload) ‖ tag (16)`.
//!
//! # Batched I/O
//!
//! Every access is available in two granularities: per-block
//! ([`SealedRegion::read`] / [`SealedRegion::write`]) and batched
//! ([`SealedRegion::read_batch`] / [`SealedRegion::write_batch`] for
//! contiguous ranges, [`SealedRegion::read_batch_at`] /
//! [`SealedRegion::write_batch_at`] for gather/scatter index lists such as
//! an ORAM path). A batch seals or opens N payloads per call with **one**
//! boundary crossing (`HostStats::crossings`), one scratch allocation, and
//! amortized nonce/AAD setup. The per-block trace — which blocks, in which
//! order, read or written — is identical either way; batching is purely a
//! cost optimization and never changes the adversary's view of the access
//! pattern.
//!
//! ## Chunk-size guidance
//!
//! [`batch_chunk_blocks`] bounds a batch to [`MAX_BATCH_BYTES`] of sealed
//! data (clamped to [1, [`MAX_BATCH_BLOCKS`]]): large enough to amortize
//! the crossing, small enough that the enclave-side scratch stays cache-
//! friendly and far below any realistic oblivious-memory budget. Chunk
//! sizes must be (and are) a function of block geometry only — never of
//! data — so chunking cannot leak. [`SealedScan`] streams a whole region
//! at that granularity.
//!
//! # Partitioned (parallel) sealing
//!
//! [`SealedRegion::set_parallelism`] hands the region a
//! [`ThreadPool`]; batched calls then partition each sub-batch's AEAD
//! work — and only the AEAD work — across workers over **disjoint** block
//! ranges: each worker gets its own contiguous slice of the sealed
//! staging buffer and of the plaintext scratch, plus a pre-reserved range
//! of nonce counters and revision values (reserved serially before
//! workers start, so every block is sealed with exactly the nonce and
//! revision the serial loop would have used). The [`EnclaveMemory`] calls
//! are untouched: same blocks, same order, same crossings — the
//! adversary's view is bit-identical to a serial run, so parallelism
//! cannot leak. Batches smaller than [`PARALLEL_MIN_BLOCKS`] stay serial
//! (thread spawn would cost more than it saves); the threshold is a
//! function of batch geometry only, never of data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use oblidb_crypto::aead::{self, AeadKey, Nonce, NONCE_LEN, TAG_LEN};
use oblidb_enclave::{EnclaveMemory, HostError, RegionId, ThreadPool};

/// Extra bytes a sealed block occupies beyond its plaintext payload.
pub const SEAL_OVERHEAD: usize = NONCE_LEN + TAG_LEN;

/// Upper bound on the sealed bytes moved per batched crossing.
pub const MAX_BATCH_BYTES: usize = 256 * 1024;

/// Upper bound on the blocks moved per batched crossing.
pub const MAX_BATCH_BLOCKS: usize = 256;

/// Smallest batch (in blocks) worth partitioning across pool workers;
/// below this, scoped-thread spawn overhead exceeds the AEAD work saved.
pub const PARALLEL_MIN_BLOCKS: usize = 64;

/// The default batch size, in blocks, for a region with `payload_len`-byte
/// payloads: as many sealed blocks as fit in [`MAX_BATCH_BYTES`], clamped
/// to `[1, MAX_BATCH_BLOCKS]`. A function of block geometry only (public),
/// never of data — chunking cannot leak.
pub fn batch_chunk_blocks(payload_len: usize) -> usize {
    (MAX_BATCH_BYTES / (payload_len + SEAL_OVERHEAD)).clamp(1, MAX_BATCH_BLOCKS)
}

/// Errors from the sealed-storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// The untrusted host failed the operation (bounds, unknown region...).
    Host(HostError),
    /// Authentication failed: the block was tampered with, moved, replayed,
    /// or rolled back by the untrusted OS.
    TamperDetected {
        /// Region of the offending block.
        region: RegionId,
        /// Index of the offending block.
        index: u64,
    },
    /// A sealed region manifest failed authentication or decoding: the
    /// persisted trusted-state snapshot (revision counters, nonce counter)
    /// was tampered with, truncated, or sealed under a different key. A
    /// reopen must treat the whole region as unattachable.
    ManifestRejected {
        /// The region whose manifest was rejected.
        region: RegionId,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Host(e) => write!(f, "host error: {e}"),
            StorageError::TamperDetected { region, index } => {
                write!(f, "integrity violation at block {index} of region {region:?}")
            }
            StorageError::ManifestRejected { region } => {
                write!(f, "sealed manifest for region {region:?} rejected (tampered or wrong key)")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<HostError> for StorageError {
    fn from(e: HostError) -> Self {
        StorageError::Host(e)
    }
}

/// An encrypted, integrity-protected block region in untrusted memory.
///
/// Trusted state (kept "inside the enclave"): the AEAD key, the per-block
/// revision numbers, and the nonce counter. Everything else lives in the
/// [`Host`](oblidb_enclave::Host).
pub struct SealedRegion {
    region: RegionId,
    key: AeadKey,
    payload_len: usize,
    write_counter: u64,
    revisions: Vec<u64>,
    scratch: Vec<u8>,
    /// Sealed-side staging buffer for batched calls (one allocation per
    /// region, reused across batches).
    batch: Vec<u8>,
    /// Worker pool for partitioned batch AEAD (serial by default; see the
    /// module docs on partitioned sealing).
    pool: ThreadPool,
}

impl SealedRegion {
    /// Allocates a region of `blocks` sealed blocks, each carrying
    /// `payload_len` plaintext bytes, and initializes every block to an
    /// encryption of zeros so the region is uniformly unreadable from
    /// outside and every block is readable from inside. Initialization is
    /// batched: one crossing per [`batch_chunk_blocks`] chunk, and no AEAD
    /// work at all on payload-free substrates.
    pub fn create<M: EnclaveMemory>(
        host: &mut M,
        key: AeadKey,
        blocks: usize,
        payload_len: usize,
    ) -> Result<Self, StorageError> {
        let region = host.alloc_region(blocks, payload_len + SEAL_OVERHEAD)?;
        let mut this = Self {
            region,
            key,
            payload_len,
            write_counter: 0,
            revisions: vec![0; blocks],
            scratch: vec![0u8; payload_len + SEAL_OVERHEAD],
            batch: Vec::new(),
            pool: ThreadPool::serial(),
        };
        this.zero_fill(host, 0, blocks)?;
        Ok(this)
    }

    /// Seals zeros into blocks `[start, start + count)`, batched.
    fn zero_fill<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        start: usize,
        count: usize,
    ) -> Result<(), StorageError> {
        if self.payload_len == 0 {
            // Degenerate zero-payload blocks: batch buffers cannot express
            // them (a batch's block count is its length / payload length).
            for i in start..start + count {
                self.write(host, i as u64, &[])?;
            }
            return Ok(());
        }
        let chunk = batch_chunk_blocks(self.payload_len);
        let zeros = vec![0u8; chunk.min(count) * self.payload_len];
        let mut at = start;
        let end = start + count;
        while at < end {
            let n = chunk.min(end - at);
            self.write_batch(host, at as u64, &zeros[..n * self.payload_len])?;
            at += n;
        }
        Ok(())
    }

    /// The underlying host region (public identity).
    pub fn region_id(&self) -> RegionId {
        self.region
    }

    /// The region's AEAD key — trusted-side state, exposed so an owning
    /// layer can embed it in a *sealed* parent manifest (the key hierarchy
    /// of enclave sealing: the master-derived manifest key wraps region
    /// keys). Never write the return value anywhere unencrypted.
    pub fn key(&self) -> AeadKey {
        self.key.clone()
    }

    /// A **read-only** sibling handle over the same underlying region:
    /// same key, same revision counters, fresh scratch buffers.
    ///
    /// Snapshot sessions use this to read a table concurrently: reads
    /// authenticate against the per-block revisions without bumping them,
    /// so any number of snapshot handles agree — **as long as no writer
    /// runs**. Writing through a snapshot handle (or through the original
    /// while snapshots are live) desynchronizes the revision counters and
    /// shows up as `TamperDetected` on the stale handle; the database
    /// layer excludes writers for the lifetime of every snapshot (its
    /// read/write latch), which is what makes handing these out sound.
    pub fn snapshot_handle(&self) -> SealedRegion {
        SealedRegion {
            region: self.region,
            key: self.key.clone(),
            payload_len: self.payload_len,
            write_counter: self.write_counter,
            revisions: self.revisions.clone(),
            scratch: vec![0u8; self.payload_len + SEAL_OVERHEAD],
            batch: Vec::new(),
            pool: self.pool,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> u64 {
        self.revisions.len() as u64
    }

    /// True when the region holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.revisions.is_empty()
    }

    /// Plaintext payload length per block.
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Selects the worker pool for partitioned batch AEAD (see the module
    /// docs). The pool changes only *who computes* the seal/open work
    /// inside the enclave — the memory calls, nonces, revisions and
    /// ciphertexts are bit-identical to a serial run, so the adversary's
    /// view is unchanged. Serial by default.
    pub fn set_parallelism(&mut self, pool: ThreadPool) {
        self.pool = pool;
    }

    /// The worker pool batched calls currently use.
    pub fn parallelism(&self) -> ThreadPool {
        self.pool
    }

    /// The per-worker block ranges a `count`-block batch would be split
    /// into: one partition per worker when the batch is big enough to pay
    /// for spawning ([`PARALLEL_MIN_BLOCKS`]), a single partition
    /// otherwise. Geometry-only, so partitioning cannot leak.
    fn partitions(&self, count: usize) -> Vec<(usize, usize)> {
        if self.pool.is_serial() || count < PARALLEL_MIN_BLOCKS {
            return vec![(0, count)];
        }
        self.pool.partition(count)
    }

    /// Reads and authenticates a block, returning its plaintext payload.
    ///
    /// The returned slice borrows this region's scratch buffer; copy it out
    /// before the next storage call.
    pub fn read<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        index: u64,
    ) -> Result<&[u8], StorageError> {
        let revision = *self.revisions.get(index as usize).ok_or(HostError::OutOfBounds {
            region: self.region,
            index,
            len: self.len(),
        })?;
        let retains = host.retains_payloads();
        let sealed = host.read(self.region, index)?;
        if !retains {
            // Payload-free substrate (e.g. `CountingMemory`): the boundary
            // crossing above is what the cost model observes; synthesize
            // zeroed plaintext in place of decryption. Oblivious callers'
            // access patterns are payload-independent, so counts match.
            self.scratch.clear();
            self.scratch.resize(NONCE_LEN + self.payload_len, 0);
            return Ok(&self.scratch[NONCE_LEN..NONCE_LEN + self.payload_len]);
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(sealed);

        let (nonce_bytes, rest) = self.scratch.split_at_mut(NONCE_LEN);
        let (ciphertext, tag) = rest.split_at_mut(self.payload_len);
        let nonce = Nonce((&*nonce_bytes).try_into().expect("nonce length"));
        let tag: [u8; TAG_LEN] = (&*tag).try_into().expect("tag length");
        let mut aad = [0u8; 16];
        aad[..8].copy_from_slice(&index.to_le_bytes());
        aad[8..].copy_from_slice(&revision.to_le_bytes());

        aead::open(&self.key, &nonce, &aad, ciphertext, &tag)
            .map_err(|_| StorageError::TamperDetected { region: self.region, index })?;
        Ok(&self.scratch[NONCE_LEN..NONCE_LEN + self.payload_len])
    }

    /// Seals and writes a block, bumping its revision.
    ///
    /// Every write re-randomizes the ciphertext (fresh nonce), so a dummy
    /// write — writing back exactly what was read — is indistinguishable
    /// from a real one, the property all the paper's operators rely on.
    pub fn write<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        index: u64,
        payload: &[u8],
    ) -> Result<(), StorageError> {
        assert_eq!(payload.len(), self.payload_len, "payload length mismatch");
        let len = self.len();
        let slot = self.revisions.get_mut(index as usize).ok_or(HostError::OutOfBounds {
            region: self.region,
            index,
            len,
        })?;
        *slot += 1;
        let revision = *slot;

        self.write_counter += 1;
        if !host.retains_payloads() {
            // Payload-free substrate: the block is dropped on arrival, so
            // sealing it would only burn AEAD cycles (the dominant cost in
            // every operator). Ship a zeroed sealed-size buffer; revision
            // and counter bookkeeping above stay identical.
            self.scratch.clear();
            self.scratch.resize(self.payload_len + SEAL_OVERHEAD, 0);
            host.write(self.region, index, &self.scratch)?;
            return Ok(());
        }
        let nonce = Nonce::from_parts(self.region.0, self.write_counter);
        let mut aad = [0u8; 16];
        aad[..8].copy_from_slice(&index.to_le_bytes());
        aad[8..].copy_from_slice(&revision.to_le_bytes());

        self.scratch.clear();
        self.scratch.extend_from_slice(&nonce.0);
        self.scratch.extend_from_slice(payload);
        let ct_range = NONCE_LEN..NONCE_LEN + self.payload_len;
        let tag = aead::seal(&self.key, &nonce, &aad, &mut self.scratch[ct_range]);
        self.scratch.extend_from_slice(&tag);
        host.write(self.region, index, &self.scratch)?;
        Ok(())
    }

    /// Bounds-checks a batch of indices before any crossing happens,
    /// mirroring the per-block error (first offending index).
    fn check_bounds(&self, indices: impl Iterator<Item = u64>) -> Result<(), StorageError> {
        let len = self.len();
        for index in indices {
            if index >= len {
                return Err(HostError::OutOfBounds { region: self.region, index, len }.into());
            }
        }
        Ok(())
    }

    /// Reads and authenticates `count` consecutive blocks starting at
    /// `start`, returning their concatenated plaintext payloads
    /// (`count × payload_len` bytes) — one boundary crossing per
    /// [`batch_chunk_blocks`] sub-batch, so the sealed staging buffer
    /// never exceeds [`MAX_BATCH_BYTES`] however large the range.
    ///
    /// The returned slice borrows this region's scratch buffer; copy what
    /// you need before the next storage call. A tampered block fails with
    /// [`StorageError::TamperDetected`] carrying that block's absolute
    /// index, exactly as the per-block path would.
    pub fn read_batch<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        start: u64,
        count: usize,
    ) -> Result<&[u8], StorageError> {
        self.check_bounds((start..start + count as u64).take(count))?;
        self.scratch.clear();
        self.scratch.resize(count * self.payload_len, 0);
        let retains = host.retains_payloads();
        let chunk = batch_chunk_blocks(self.payload_len);
        let mut at = 0usize;
        while at < count {
            let n = chunk.min(count - at);
            host.read_blocks(self.region, start + at as u64, n, &mut self.batch)?;
            if retains {
                self.open_batch(start + at as u64, n, None, at)?;
            }
            at += n;
        }
        Ok(&self.scratch)
    }

    /// Gather variant of [`SealedRegion::read_batch`]: reads and
    /// authenticates the blocks at `indices` (in order, one crossing) and
    /// returns their concatenated plaintext payloads. Meant for path-scale
    /// index lists (an ORAM path, a hash bucket pair); the staging buffer
    /// is sized by `indices.len()`.
    pub fn read_batch_at<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        indices: &[u64],
    ) -> Result<&[u8], StorageError> {
        self.check_bounds(indices.iter().copied())?;
        self.scratch.clear();
        self.scratch.resize(indices.len() * self.payload_len, 0);
        host.read_blocks_at(self.region, indices, &mut self.batch)?;
        if host.retains_payloads() {
            self.open_batch(0, indices.len(), Some(indices), 0)?;
        }
        Ok(&self.scratch)
    }

    /// Opens `count` sealed blocks staged in `self.batch`, writing their
    /// payloads into `self.scratch` starting at row `scratch_row`. Block
    /// `i`'s absolute index is `indices[i]` when given, else `start + i`.
    ///
    /// With a parallel pool, the batch is split into per-worker disjoint
    /// (staging, scratch) slice pairs; the first failing block in batch
    /// order is reported, exactly as the serial loop would.
    fn open_batch(
        &mut self,
        start: u64,
        count: usize,
        indices: Option<&[u64]>,
        scratch_row: usize,
    ) -> Result<(), StorageError> {
        let payload_len = self.payload_len;
        let sealed_len = payload_len + SEAL_OVERHEAD;
        debug_assert_eq!(self.batch.len(), count * sealed_len);
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::OpenBatch);
        if oblidb_telemetry::enabled() {
            oblidb_telemetry::counter_add(oblidb_telemetry::Counter::BlocksOpened, count as u64);
            oblidb_telemetry::counter_add(
                oblidb_telemetry::Counter::BytesOpened,
                (count * payload_len) as u64,
            );
            oblidb_telemetry::histogram_record(
                oblidb_telemetry::HistogramId::OpenBatchBlocks,
                count as u64,
            );
        }
        let parts = self.partitions(count);
        let (key, region, revisions) = (self.key.clone(), self.region, &self.revisions[..]);
        let scratch =
            &mut self.scratch[scratch_row * payload_len..(scratch_row + count) * payload_len];
        if parts.len() <= 1 {
            return open_run(
                &key,
                region,
                payload_len,
                revisions,
                start,
                indices,
                0,
                &mut self.batch,
                scratch,
            );
        }
        let pool = self.pool;
        let mut jobs = Vec::with_capacity(parts.len());
        let mut batch_rest = &mut self.batch[..];
        let mut scratch_rest = scratch;
        let key = &key;
        for (off, n) in parts {
            let (sealed_part, b_rest) = batch_rest.split_at_mut(n * sealed_len);
            let (plain_part, s_rest) = scratch_rest.split_at_mut(n * payload_len);
            batch_rest = b_rest;
            scratch_rest = s_rest;
            jobs.push(move || {
                open_run(
                    key,
                    region,
                    payload_len,
                    revisions,
                    start,
                    indices,
                    off,
                    sealed_part,
                    plain_part,
                )
            });
        }
        // The first error in partition order is the first failing block in
        // batch order (partitions are contiguous and ascending).
        pool.run(jobs).into_iter().collect()
    }

    /// Seals and writes a whole number of payloads (`payloads.len()` must
    /// be a multiple of the payload length) to consecutive blocks starting
    /// at `start`, bumping each revision — one boundary crossing per
    /// [`batch_chunk_blocks`] sub-batch. Like [`SealedRegion::write`],
    /// every block gets a fresh nonce, so batched dummy writes stay
    /// indistinguishable from real ones.
    pub fn write_batch<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        start: u64,
        payloads: &[u8],
    ) -> Result<(), StorageError> {
        let count = self.payload_count(payloads);
        self.check_bounds((start..start + count as u64).take(count))?;
        let retains = host.retains_payloads();
        let chunk = batch_chunk_blocks(self.payload_len);
        let mut at = 0usize;
        while at < count {
            let n = chunk.min(count - at);
            let slice = &payloads[at * self.payload_len..(at + n) * self.payload_len];
            self.seal_batch(retains, start + at as u64, n, None, slice);
            host.write_blocks(self.region, start + at as u64, &self.batch)?;
            at += n;
        }
        Ok(())
    }

    /// Scatter variant of [`SealedRegion::write_batch`]: payload `i` is
    /// sealed for block `indices[i]`.
    pub fn write_batch_at<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        indices: &[u64],
        payloads: &[u8],
    ) -> Result<(), StorageError> {
        let count = self.payload_count(payloads);
        assert_eq!(count, indices.len(), "one payload per index");
        self.check_bounds(indices.iter().copied())?;
        self.seal_batch(host.retains_payloads(), 0, count, Some(indices), payloads);
        host.write_blocks_at(self.region, indices, &self.batch)?;
        Ok(())
    }

    fn payload_count(&self, payloads: &[u8]) -> usize {
        assert!(
            self.payload_len > 0 && payloads.len() % self.payload_len == 0,
            "batch must be a whole number of payloads"
        );
        payloads.len() / self.payload_len
    }

    /// Seals `count` payloads into `self.batch` (or zero-fills it on a
    /// payload-free substrate), bumping revisions and the write counter
    /// exactly as `count` per-block writes would.
    ///
    /// With a parallel pool, the revision/counter bookkeeping still runs
    /// serially first — reserving each block's exact nonce and revision in
    /// batch order — then workers seal disjoint slices of the staging
    /// buffer using those pre-reserved values, so the sealed bytes are
    /// bit-identical to a serial run.
    fn seal_batch(
        &mut self,
        retains: bool,
        start: u64,
        count: usize,
        indices: Option<&[u64]>,
        payloads: &[u8],
    ) {
        let payload_len = self.payload_len;
        let sealed_len = payload_len + SEAL_OVERHEAD;
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::SealBatch);
        if oblidb_telemetry::enabled() {
            oblidb_telemetry::counter_add(oblidb_telemetry::Counter::BlocksSealed, count as u64);
            oblidb_telemetry::counter_add(
                oblidb_telemetry::Counter::BytesSealed,
                (count * payload_len) as u64,
            );
            oblidb_telemetry::histogram_record(
                oblidb_telemetry::HistogramId::SealBatchBlocks,
                count as u64,
            );
        }
        self.batch.clear();
        self.batch.resize(count * sealed_len, 0);
        if !retains {
            // Payload-free substrate: blocks are dropped on arrival, so
            // skip the AEAD entirely — the zeroed batch buffer above is
            // what crosses. Revision/counter bookkeeping stays identical.
            for i in 0..count {
                let index = indices.map_or(start + i as u64, |idx| idx[i]);
                self.revisions[index as usize] += 1;
                self.write_counter += 1;
            }
            return;
        }
        // Reserve every block's (revision, nonce counter) serially, in
        // batch order — the exact values a per-block loop would assign,
        // kept per-position so duplicate scatter indices stay
        // well-defined — then seal whole runs through the fused batch
        // AEAD, partitioned across the pool when one is installed.
        let mut reserved: Vec<(u64, u64)> = Vec::with_capacity(count);
        for i in 0..count {
            let index = indices.map_or(start + i as u64, |idx| idx[i]);
            let slot = &mut self.revisions[index as usize];
            *slot += 1;
            self.write_counter += 1;
            reserved.push((*slot, self.write_counter));
        }
        let parts = self.partitions(count);
        if parts.len() <= 1 {
            seal_run(
                &self.key,
                self.region,
                payload_len,
                start,
                indices,
                0,
                &reserved,
                payloads,
                &mut self.batch,
            );
            return;
        }
        let pool = self.pool;
        let (key, region) = (&self.key, self.region);
        let reserved = &reserved[..];
        let mut jobs = Vec::with_capacity(parts.len());
        let mut batch_rest = &mut self.batch[..];
        for (off, n) in parts {
            let (sealed_part, rest) = batch_rest.split_at_mut(n * sealed_len);
            batch_rest = rest;
            let payload_part = &payloads[off * payload_len..(off + n) * payload_len];
            jobs.push(move || {
                seal_run(
                    key,
                    region,
                    payload_len,
                    start,
                    indices,
                    off,
                    reserved,
                    payload_part,
                    sealed_part,
                );
            });
        }
        pool.run(jobs);
    }

    /// Grows the region to `new_blocks`, sealing zeroed payloads into the
    /// new tail (batched, like [`SealedRegion::create`]).
    pub fn grow<M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        new_blocks: usize,
    ) -> Result<(), StorageError> {
        let old = self.revisions.len();
        if new_blocks <= old {
            return Ok(());
        }
        host.grow_region(self.region, new_blocks)?;
        self.revisions.resize(new_blocks, 0);
        self.zero_fill(host, old, new_blocks - old)
    }

    /// Releases the untrusted allocation.
    pub fn free<M: EnclaveMemory>(self, host: &mut M) -> Result<(), StorageError> {
        host.free_region(self.region)?;
        Ok(())
    }

    /// Re-attaches to a region whose untrusted blocks already exist,
    /// injecting the trusted state (revision counters, nonce counter) the
    /// caller recovered from a verified source.
    ///
    /// This is the building block under
    /// [`SealedRegion::open_with_manifest`] and the WAL tail scan; wrong
    /// revision values are safe — they surface as
    /// [`StorageError::TamperDetected`] on first read, never as silently
    /// accepted stale data. `write_counter` must be at least the largest
    /// counter ever used under `key` for this region, or nonces would
    /// repeat; the sealed manifest guarantees that by recording the
    /// post-seal counter.
    pub fn attach(
        region: RegionId,
        key: AeadKey,
        payload_len: usize,
        revisions: Vec<u64>,
        write_counter: u64,
    ) -> Self {
        SealedRegion {
            region,
            key,
            payload_len,
            write_counter,
            revisions,
            scratch: vec![0u8; payload_len + SEAL_OVERHEAD],
            batch: Vec::new(),
            pool: ThreadPool::serial(),
        }
    }

    /// Seals this region's trusted state — the per-block revision counters
    /// and the nonce counter — into an encrypted + MACed **manifest** blob
    /// that can live in untrusted storage across an enclave restart.
    ///
    /// Layout: `nonce (12) ‖ ciphertext ‖ tag (16)`, sealed under the
    /// region's own key with manifest-specific associated data (so a
    /// manifest can never be confused with a block, and a manifest for one
    /// region can never be replayed into another). The nonce consumes one
    /// tick of the region's write counter, and the *post-seal* counter is
    /// what the manifest records — a reopened region resumes past every
    /// nonce ever used.
    ///
    /// Rollback model: a region file rolled back relative to its manifest
    /// fails block authentication (stale revision) on first read. Rolling
    /// back manifest *and* region files together to an older, mutually
    /// consistent checkpoint is undetectable without a hardware monotonic
    /// counter — the classic sealed-storage limitation, documented in the
    /// README.
    pub fn seal_manifest(&mut self) -> Vec<u8> {
        self.write_counter += 1;
        let nonce = Nonce::from_parts(self.region.0, self.write_counter);
        let mut plain = Vec::with_capacity(24 + self.revisions.len() * 8);
        plain.extend_from_slice(&(self.payload_len as u64).to_le_bytes());
        plain.extend_from_slice(&self.write_counter.to_le_bytes());
        plain.extend_from_slice(&(self.revisions.len() as u64).to_le_bytes());
        for rev in &self.revisions {
            plain.extend_from_slice(&rev.to_le_bytes());
        }
        let aad = Self::manifest_aad(self.region);
        let mut out = Vec::with_capacity(NONCE_LEN + plain.len() + TAG_LEN);
        out.extend_from_slice(&nonce.0);
        out.extend_from_slice(&plain);
        let tag = aead::seal(&self.key, &nonce, &aad, &mut out[NONCE_LEN..]);
        out.extend_from_slice(&tag);
        out
    }

    /// Reconstructs a region's trusted state from a manifest produced by
    /// [`SealedRegion::seal_manifest`], verifying its authenticity.
    ///
    /// Returns [`StorageError::ManifestRejected`] when the blob fails
    /// authentication (tampered, truncated, or sealed under a different
    /// key/region). The caller must separately cross-check the untrusted
    /// region's observed geometry (`region_len`, `region_block_size`)
    /// against [`SealedRegion::len`] / [`SealedRegion::payload_len`] — a
    /// mismatch means the host swapped in a different file.
    pub fn open_with_manifest(
        region: RegionId,
        key: AeadKey,
        manifest: &[u8],
    ) -> Result<Self, StorageError> {
        let rejected = StorageError::ManifestRejected { region };
        if manifest.len() < NONCE_LEN + TAG_LEN + 24 {
            return Err(rejected);
        }
        let nonce = Nonce(manifest[..NONCE_LEN].try_into().expect("nonce length"));
        let tag: [u8; TAG_LEN] =
            manifest[manifest.len() - TAG_LEN..].try_into().expect("tag length");
        let mut plain = manifest[NONCE_LEN..manifest.len() - TAG_LEN].to_vec();
        let aad = Self::manifest_aad(region);
        aead::open(&key, &nonce, &aad, &mut plain, &tag).map_err(|_| rejected)?;
        let word = |at: usize| u64::from_le_bytes(plain[at..at + 8].try_into().expect("u64"));
        let payload_len = word(0) as usize;
        let write_counter = word(8);
        let blocks = word(16) as usize;
        if plain.len() != 24 + blocks * 8 {
            return Err(rejected);
        }
        let revisions = (0..blocks).map(|i| word(24 + i * 8)).collect();
        Ok(Self::attach(region, key, payload_len, revisions, write_counter))
    }

    /// The associated data binding a manifest to its region identity.
    fn manifest_aad(region: RegionId) -> [u8; 20] {
        let mut aad = [0u8; 20];
        aad[..16].copy_from_slice(b"oblidb-region-mf");
        aad[16..].copy_from_slice(&region.0.to_le_bytes());
        aad
    }
}

/// The per-block AAD: block index ‖ revision, little-endian.
fn block_aad(index: u64, revision: u64) -> [u8; 16] {
    let mut aad = [0u8; 16];
    aad[..8].copy_from_slice(&index.to_le_bytes());
    aad[8..].copy_from_slice(&revision.to_le_bytes());
    aad
}

/// Seals a run of payloads into the matching sealed staging slice
/// (`nonce ‖ ciphertext ‖ tag` per block) with pre-assigned (revision,
/// nonce counter) pairs, through one fused [`aead::seal_batch`] call —
/// the key schedule is parsed once and one-time keys derive in multi-lane
/// SIMD sweeps. Block `i` of the run sits at batch position `pos_off + i`;
/// `reserved` is indexed by batch position. Pure function of its inputs —
/// the unit both the serial path and pool workers execute per run, and
/// byte-identical to the historical per-block seal loop.
#[allow(clippy::too_many_arguments)]
fn seal_run(
    key: &AeadKey,
    region: RegionId,
    payload_len: usize,
    start: u64,
    indices: Option<&[u64]>,
    pos_off: usize,
    reserved: &[(u64, u64)],
    payload_run: &[u8],
    sealed_run: &mut [u8],
) {
    let sealed_len = payload_len + SEAL_OVERHEAD;
    let count = sealed_run.len() / sealed_len;
    let mut nonces = Vec::with_capacity(count);
    let mut aads: Vec<[u8; 16]> = Vec::with_capacity(count);
    let mut ciphertexts: Vec<&mut [u8]> = Vec::with_capacity(count);
    let mut tag_slots: Vec<&mut [u8]> = Vec::with_capacity(count);
    for (i, sealed) in sealed_run.chunks_exact_mut(sealed_len).enumerate() {
        let pos = pos_off + i;
        let index = indices.map_or(start + pos as u64, |idx| idx[pos]);
        let (revision, counter) = reserved[pos];
        let nonce = Nonce::from_parts(region.0, counter);
        sealed[..NONCE_LEN].copy_from_slice(&nonce.0);
        sealed[NONCE_LEN..NONCE_LEN + payload_len]
            .copy_from_slice(&payload_run[i * payload_len..(i + 1) * payload_len]);
        nonces.push(nonce);
        aads.push(block_aad(index, revision));
        let (head, tag) = sealed.split_at_mut(NONCE_LEN + payload_len);
        ciphertexts.push(&mut head[NONCE_LEN..]);
        tag_slots.push(tag);
    }
    let aad_refs: Vec<&[u8]> = aads.iter().map(|a| a.as_slice()).collect();
    let mut tags = vec![[0u8; TAG_LEN]; count];
    aead::seal_batch(key, &nonces, &aad_refs, &mut ciphertexts, &mut tags);
    for (slot, tag) in tag_slots.iter_mut().zip(tags.iter()) {
        slot.copy_from_slice(tag);
    }
}

/// Opens a run of staged sealed blocks into the matching plaintext slice
/// through one fused [`aead::open_batch`] call. Block `i` of the run sits
/// at batch position `pos_off + i`; its absolute index is `indices[pos]`
/// when given, else `start + pos`. Every tag in the run is verified
/// before anything decrypts; the error reports the run's first failing
/// block in batch order, exactly as the historical per-block loop did.
#[allow(clippy::too_many_arguments)]
fn open_run(
    key: &AeadKey,
    region: RegionId,
    payload_len: usize,
    revisions: &[u64],
    start: u64,
    indices: Option<&[u64]>,
    pos_off: usize,
    sealed_run: &mut [u8],
    plain_run: &mut [u8],
) -> Result<(), StorageError> {
    let sealed_len = payload_len + SEAL_OVERHEAD;
    let count = sealed_run.len() / sealed_len;
    let mut nonces = Vec::with_capacity(count);
    let mut aads: Vec<[u8; 16]> = Vec::with_capacity(count);
    let mut abs_indices = Vec::with_capacity(count);
    let mut ciphertexts: Vec<&mut [u8]> = Vec::with_capacity(count);
    let mut tags: Vec<[u8; TAG_LEN]> = Vec::with_capacity(count);
    for (i, sealed) in sealed_run.chunks_exact_mut(sealed_len).enumerate() {
        let pos = pos_off + i;
        let index = indices.map_or(start + pos as u64, |idx| idx[pos]);
        let revision = revisions[index as usize];
        abs_indices.push(index);
        let (nonce_bytes, rest) = sealed.split_at_mut(NONCE_LEN);
        let (ciphertext, tag) = rest.split_at_mut(payload_len);
        nonces.push(Nonce((&*nonce_bytes).try_into().expect("nonce length")));
        tags.push((&*tag).try_into().expect("tag length"));
        aads.push(block_aad(index, revision));
        ciphertexts.push(ciphertext);
    }
    let aad_refs: Vec<&[u8]> = aads.iter().map(|a| a.as_slice()).collect();
    aead::open_batch(key, &nonces, &aad_refs, &mut ciphertexts, &tags)
        .map_err(|e| StorageError::TamperDetected { region, index: abs_indices[e.index] })?;
    for (i, ciphertext) in ciphertexts.iter().enumerate() {
        plain_run[i * payload_len..(i + 1) * payload_len].copy_from_slice(ciphertext);
    }
    Ok(())
}

/// A streaming cursor over a [`SealedRegion`]: yields the region's
/// payloads front to back in chunks of a configurable block count, one
/// boundary crossing per chunk.
///
/// The chunk size is fixed at construction (a public function of block
/// geometry; see [`batch_chunk_blocks`]), so the resulting access pattern
/// is a deterministic function of the region length alone — scans stay
/// oblivious. Typical use:
///
/// ```ignore
/// let mut scan = SealedScan::new(&region);
/// while let Some((start, payloads)) = scan.next_chunk(host, &mut region)? {
///     for (off, payload) in payloads.chunks_exact(region.payload_len()).enumerate() {
///         let index = start + off as u64;
///         // ... per-block work ...
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SealedScan {
    next: u64,
    end: u64,
    chunk: usize,
}

impl SealedScan {
    /// A cursor over all of `region`, at the default chunk size for its
    /// payload length.
    pub fn new(region: &SealedRegion) -> Self {
        Self::with_chunk(region, batch_chunk_blocks(region.payload_len()))
    }

    /// A cursor over all of `region` with an explicit chunk size (blocks
    /// per crossing, clamped to at least 1).
    pub fn with_chunk(region: &SealedRegion, chunk: usize) -> Self {
        SealedScan { next: 0, end: region.len(), chunk: chunk.max(1) }
    }

    /// A cursor over blocks `[start, end)` of a region.
    pub fn over(range: std::ops::Range<u64>, chunk: usize) -> Self {
        SealedScan { next: range.start, end: range.end, chunk: chunk.max(1) }
    }

    /// Reads the next chunk, returning `(first block index, concatenated
    /// payloads)`, or `None` once the region is exhausted. The slice
    /// borrows `region`'s scratch buffer.
    pub fn next_chunk<'r, M: EnclaveMemory>(
        &mut self,
        host: &mut M,
        region: &'r mut SealedRegion,
    ) -> Result<Option<(u64, &'r [u8])>, StorageError> {
        if self.next >= self.end {
            return Ok(None);
        }
        let start = self.next;
        let n = (self.chunk as u64).min(self.end - start) as usize;
        self.next += n as u64;
        let payloads = region.read_batch(host, start, n)?;
        Ok(Some((start, payloads)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_enclave::Host;

    fn setup(blocks: usize, payload: usize) -> (Host, SealedRegion) {
        let mut host = Host::new();
        let region = SealedRegion::create(&mut host, AeadKey([7u8; 32]), blocks, payload).unwrap();
        (host, region)
    }

    #[test]
    fn roundtrip() {
        let (mut host, mut r) = setup(4, 32);
        let data = [0xABu8; 32];
        r.write(&mut host, 1, &data).unwrap();
        assert_eq!(r.read(&mut host, 1).unwrap(), &data);
    }

    #[test]
    fn fresh_region_reads_zeros() {
        let (mut host, mut r) = setup(3, 16);
        assert_eq!(r.read(&mut host, 2).unwrap(), &[0u8; 16]);
    }

    #[test]
    fn rewrites_are_rerandomized() {
        // A dummy write (same plaintext) must change the ciphertext.
        let (mut host, mut r) = setup(2, 16);
        let data = [5u8; 16];
        r.write(&mut host, 0, &data).unwrap();
        let sealed1 = host.adversary_snapshot(r.region_id(), 0).unwrap();
        r.write(&mut host, 0, &data).unwrap();
        let sealed2 = host.adversary_snapshot(r.region_id(), 0).unwrap();
        assert_ne!(sealed1, sealed2);
        assert_eq!(r.read(&mut host, 0).unwrap(), &data);
    }

    #[test]
    fn bit_flip_detected() {
        let (mut host, mut r) = setup(2, 16);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        let rid = r.region_id();
        host.adversary_corrupt(rid, 0, |b| b[NONCE_LEN] ^= 1);
        assert_eq!(
            r.read(&mut host, 0).err(),
            Some(StorageError::TamperDetected { region: rid, index: 0 })
        );
    }

    #[test]
    fn nonce_tamper_detected() {
        let (mut host, mut r) = setup(2, 16);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        host.adversary_corrupt(r.region_id(), 0, |b| b[0] ^= 1);
        assert!(matches!(r.read(&mut host, 0), Err(StorageError::TamperDetected { .. })));
    }

    #[test]
    fn tag_tamper_detected() {
        let (mut host, mut r) = setup(2, 16);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        host.adversary_corrupt(r.region_id(), 0, |b| {
            let last = b.len() - 1;
            b[last] ^= 0x80;
        });
        assert!(matches!(r.read(&mut host, 0), Err(StorageError::TamperDetected { .. })));
    }

    #[test]
    fn block_shuffle_detected() {
        // Swapping two validly sealed blocks must fail: the index is bound
        // into the AAD.
        let (mut host, mut r) = setup(2, 16);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        r.write(&mut host, 1, &[2u8; 16]).unwrap();
        host.adversary_swap(r.region_id(), 0, 1);
        assert!(matches!(r.read(&mut host, 0), Err(StorageError::TamperDetected { .. })));
        assert!(matches!(r.read(&mut host, 1), Err(StorageError::TamperDetected { .. })));
    }

    #[test]
    fn rollback_detected() {
        // Replaying an older (validly sealed) version of a block must fail:
        // the revision number in the enclave has moved on.
        let (mut host, mut r) = setup(2, 16);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        let old = host.adversary_snapshot(r.region_id(), 0).unwrap();
        r.write(&mut host, 0, &[2u8; 16]).unwrap();
        let rid = r.region_id();
        host.adversary_restore(rid, 0, old);
        assert_eq!(
            r.read(&mut host, 0).err(),
            Some(StorageError::TamperDetected { region: rid, index: 0 })
        );
    }

    #[test]
    fn cross_region_block_transplant_detected() {
        // A block sealed for one table cannot be planted into another:
        // regions use distinct keys.
        let mut host = Host::new();
        let mut a = SealedRegion::create(&mut host, AeadKey([1u8; 32]), 2, 16).unwrap();
        let mut b = SealedRegion::create(&mut host, AeadKey([2u8; 32]), 2, 16).unwrap();
        a.write(&mut host, 0, &[9u8; 16]).unwrap();
        let stolen = host.adversary_snapshot(a.region_id(), 0).unwrap();
        host.adversary_restore(b.region_id(), 0, stolen);
        assert!(matches!(b.read(&mut host, 0), Err(StorageError::TamperDetected { .. })));
    }

    #[test]
    fn grow_preserves_and_extends() {
        let (mut host, mut r) = setup(2, 8);
        r.write(&mut host, 1, &[3u8; 8]).unwrap();
        r.grow(&mut host, 5).unwrap();
        assert_eq!(r.len(), 5);
        assert_eq!(r.read(&mut host, 1).unwrap(), &[3u8; 8]);
        assert_eq!(r.read(&mut host, 4).unwrap(), &[0u8; 8]);
    }

    #[test]
    fn sealed_block_size_is_payload_plus_overhead() {
        let (host, r) = setup(1, 100);
        assert_eq!(host.region_block_size(r.region_id()).unwrap(), 100 + SEAL_OVERHEAD);
    }

    #[test]
    fn out_of_bounds_write_errors() {
        let (mut host, mut r) = setup(2, 8);
        assert!(matches!(r.write(&mut host, 7, &[0u8; 8]), Err(StorageError::Host(_))));
    }

    #[test]
    fn batch_roundtrip_matches_per_block() {
        let (mut host, mut r) = setup(8, 16);
        let payloads: Vec<u8> = (0..8 * 16).map(|i| i as u8).collect();
        r.write_batch(&mut host, 0, &payloads).unwrap();
        assert_eq!(r.read_batch(&mut host, 0, 8).unwrap(), &payloads[..]);
        for i in 0..8u64 {
            let expected = &payloads[i as usize * 16..(i as usize + 1) * 16];
            assert_eq!(r.read(&mut host, i).unwrap(), expected, "per-block read of batch write");
        }
    }

    #[test]
    fn batch_gather_scatter_roundtrip() {
        let (mut host, mut r) = setup(8, 8);
        let indices = [6u64, 1, 3];
        let payloads: Vec<u8> = (0..24).collect();
        r.write_batch_at(&mut host, &indices, &payloads).unwrap();
        assert_eq!(r.read_batch_at(&mut host, &indices).unwrap(), &payloads[..]);
        assert_eq!(r.read(&mut host, 1).unwrap(), &payloads[8..16]);
        assert_eq!(r.read(&mut host, 0).unwrap(), &[0u8; 8], "untouched blocks stay zero");
    }

    #[test]
    fn batch_is_one_crossing() {
        let (mut host, mut r) = setup(16, 8);
        host.reset_stats();
        let payloads = vec![7u8; 16 * 8];
        r.write_batch(&mut host, 0, &payloads).unwrap();
        r.read_batch(&mut host, 0, 16).unwrap();
        let s = host.stats();
        assert_eq!((s.reads, s.writes), (16, 16));
        assert_eq!(s.crossings, 2, "one crossing per batched call");
    }

    #[test]
    fn create_zero_init_is_batched() {
        let mut host = Host::new();
        host.reset_stats();
        let r = SealedRegion::create(&mut host, AeadKey([7u8; 32]), 100, 32).unwrap();
        let s = host.stats();
        assert_eq!(s.writes, 100);
        assert_eq!(s.crossings, 1, "zero-init of 100 small blocks fits one batch");
        drop(r);
    }

    #[test]
    fn batch_tamper_reports_offending_index() {
        let (mut host, mut r) = setup(8, 16);
        r.write_batch(&mut host, 0, &[5u8; 8 * 16]).unwrap();
        let rid = r.region_id();
        host.adversary_corrupt(rid, 5, |b| b[NONCE_LEN] ^= 1);
        assert_eq!(
            r.read_batch(&mut host, 2, 6).err(),
            Some(StorageError::TamperDetected { region: rid, index: 5 }),
            "the tampered block's absolute index surfaces from inside the batch"
        );
        // Gather path reports the same absolute index.
        assert_eq!(
            r.read_batch_at(&mut host, &[1, 5, 7]).err(),
            Some(StorageError::TamperDetected { region: rid, index: 5 })
        );
    }

    #[test]
    fn batch_rewrites_are_rerandomized() {
        let (mut host, mut r) = setup(2, 16);
        let data = vec![5u8; 2 * 16];
        r.write_batch(&mut host, 0, &data).unwrap();
        let sealed1 = host.adversary_snapshot(r.region_id(), 1).unwrap();
        r.write_batch(&mut host, 0, &data).unwrap();
        let sealed2 = host.adversary_snapshot(r.region_id(), 1).unwrap();
        assert_ne!(sealed1, sealed2, "batched dummy writes re-randomize like per-block ones");
    }

    #[test]
    fn batch_out_of_bounds_rejected_before_crossing() {
        let (mut host, mut r) = setup(4, 8);
        host.reset_stats();
        assert!(matches!(r.read_batch(&mut host, 2, 4), Err(StorageError::Host(_))));
        assert!(matches!(r.write_batch(&mut host, 3, &[0u8; 16]), Err(StorageError::Host(_))));
        assert_eq!(host.stats().crossings, 0, "bad batches never cross");
    }

    #[test]
    fn sealed_scan_streams_whole_region() {
        let (mut host, mut r) = setup(10, 8);
        for i in 0..10u64 {
            r.write(&mut host, i, &[i as u8; 8]).unwrap();
        }
        let mut scan = SealedScan::with_chunk(&r, 4);
        let mut seen = Vec::new();
        host.reset_stats();
        while let Some((start, payloads)) = scan.next_chunk(&mut host, &mut r).unwrap() {
            for (off, p) in payloads.chunks_exact(8).enumerate() {
                seen.push((start + off as u64, p[0]));
            }
        }
        assert_eq!(seen, (0..10).map(|i| (i, i as u8)).collect::<Vec<_>>());
        assert_eq!(host.stats().crossings, 3, "10 blocks in chunks of 4 = 3 crossings");
        assert!(scan.next_chunk(&mut host, &mut r).unwrap().is_none(), "stays exhausted");
    }

    #[test]
    fn grow_zero_fills_batched() {
        let (mut host, mut r) = setup(2, 8);
        r.write(&mut host, 1, &[3u8; 8]).unwrap();
        host.reset_stats();
        r.grow(&mut host, 40).unwrap();
        assert_eq!(host.stats().crossings, 1, "38 new blocks zero-filled in one batch");
        assert_eq!(r.read(&mut host, 1).unwrap(), &[3u8; 8]);
        assert_eq!(r.read(&mut host, 39).unwrap(), &[0u8; 8]);
    }

    #[test]
    fn manifest_roundtrip_reopens_region() {
        let (mut host, mut r) = setup(4, 16);
        r.write(&mut host, 2, &[9u8; 16]).unwrap();
        let manifest = r.seal_manifest();
        let rid = r.region_id();
        let key = AeadKey([7u8; 32]);
        drop(r); // the "enclave" restarts; only host blocks + manifest survive

        let mut reopened = SealedRegion::open_with_manifest(rid, key, &manifest).unwrap();
        assert_eq!(reopened.len(), 4);
        assert_eq!(reopened.payload_len(), 16);
        assert_eq!(reopened.read(&mut host, 2).unwrap(), &[9u8; 16]);
        assert_eq!(reopened.read(&mut host, 0).unwrap(), &[0u8; 16]);
        // Writes after reopen resume past every used nonce and read back.
        reopened.write(&mut host, 0, &[3u8; 16]).unwrap();
        assert_eq!(reopened.read(&mut host, 0).unwrap(), &[3u8; 16]);
    }

    #[test]
    fn tampered_manifest_rejected() {
        let (_host, mut r) = setup(2, 8);
        let rid = r.region_id();
        let key = AeadKey([7u8; 32]);
        let good = r.seal_manifest();
        for flip in [0, NONCE_LEN + 3, good.len() - 1] {
            let mut bad = good.clone();
            bad[flip] ^= 1;
            assert_eq!(
                SealedRegion::open_with_manifest(rid, key.clone(), &bad).err(),
                Some(StorageError::ManifestRejected { region: rid }),
                "bit flip at {flip} must be rejected"
            );
        }
        // Truncation and wrong-region replay are rejected too.
        assert!(matches!(
            SealedRegion::open_with_manifest(rid, key.clone(), &good[..10]),
            Err(StorageError::ManifestRejected { .. })
        ));
        assert!(matches!(
            SealedRegion::open_with_manifest(RegionId(99), key, &good),
            Err(StorageError::ManifestRejected { .. })
        ));
        // Wrong key (a different enclave identity) is rejected.
        assert!(matches!(
            SealedRegion::open_with_manifest(rid, AeadKey([8u8; 32]), &good),
            Err(StorageError::ManifestRejected { .. })
        ));
    }

    #[test]
    fn reopen_detects_rolled_back_block() {
        // The rollback the manifest exists to catch: the OS restores an
        // older (validly sealed) block version across a restart.
        let (mut host, mut r) = setup(2, 16);
        let rid = r.region_id();
        let key = AeadKey([7u8; 32]);
        r.write(&mut host, 0, &[1u8; 16]).unwrap();
        let stale = host.adversary_snapshot(rid, 0).unwrap();
        r.write(&mut host, 0, &[2u8; 16]).unwrap();
        let manifest = r.seal_manifest();
        drop(r);
        host.adversary_restore(rid, 0, stale);
        let mut reopened = SealedRegion::open_with_manifest(rid, key, &manifest).unwrap();
        assert_eq!(
            reopened.read(&mut host, 0).err(),
            Some(StorageError::TamperDetected { region: rid, index: 0 }),
            "a stale block must not authenticate against the reopened revisions"
        );
    }

    #[test]
    fn manifest_ciphertext_hides_revisions() {
        let (mut host, mut r) = setup(3, 8);
        for _ in 0..5 {
            r.write(&mut host, 1, &[1u8; 8]).unwrap();
        }
        let manifest = r.seal_manifest();
        // Revision 6 of block 1 must not be readable from the blob.
        let needle = 6u64.to_le_bytes();
        assert!(!manifest.windows(8).any(|w| w == needle));
    }

    #[test]
    fn parallel_batches_are_bit_identical_to_serial() {
        // Two regions, same key, same writes; one region seals with 4
        // workers. Sealed bytes, traces and stats must match exactly —
        // partitioned AEAD reserves the very nonces the serial loop uses.
        let blocks = 3 * PARALLEL_MIN_BLOCKS;
        let payloads: Vec<u8> = (0..blocks * 16).map(|i| (i % 251) as u8).collect();
        let run = |pool: ThreadPool| {
            let mut host = Host::new();
            let mut r = SealedRegion::create(&mut host, AeadKey([7u8; 32]), blocks, 16).unwrap();
            r.set_parallelism(pool);
            host.start_trace();
            host.reset_stats();
            r.write_batch(&mut host, 0, &payloads).unwrap();
            let opened = r.read_batch(&mut host, 0, blocks).unwrap().to_vec();
            let sealed: Vec<_> =
                (0..blocks as u64).map(|i| host.adversary_snapshot(r.region_id(), i)).collect();
            (opened, sealed, host.take_trace(), host.stats())
        };
        let serial = run(ThreadPool::serial());
        let parallel = run(ThreadPool::new(4));
        assert_eq!(serial.0, payloads);
        assert_eq!(parallel.0, payloads);
        assert_eq!(serial.1, parallel.1, "sealed bytes must be bit-identical");
        assert_eq!(serial.2, parallel.2, "traces must be identical");
        assert_eq!(serial.3, parallel.3, "stats must be identical");
    }

    #[test]
    fn parallel_scatter_batch_matches_serial() {
        let blocks = 2 * PARALLEL_MIN_BLOCKS;
        let indices: Vec<u64> = (0..blocks as u64).rev().collect();
        let payloads: Vec<u8> = (0..blocks * 8).map(|i| (i % 249) as u8).collect();
        let run = |pool: ThreadPool| {
            let mut host = Host::new();
            let mut r = SealedRegion::create(&mut host, AeadKey([3u8; 32]), blocks, 8).unwrap();
            r.set_parallelism(pool);
            r.write_batch_at(&mut host, &indices, &payloads).unwrap();
            let opened = r.read_batch_at(&mut host, &indices).unwrap().to_vec();
            let sealed: Vec<_> =
                (0..blocks as u64).map(|i| host.adversary_snapshot(r.region_id(), i)).collect();
            (opened, sealed)
        };
        let serial = run(ThreadPool::serial());
        let parallel = run(ThreadPool::new(3));
        assert_eq!(serial.0, payloads);
        assert_eq!(serial.0, parallel.0);
        assert_eq!(serial.1, parallel.1, "scatter-sealed bytes must be bit-identical");
    }

    #[test]
    fn parallel_tamper_reports_first_failing_block() {
        let blocks = 2 * PARALLEL_MIN_BLOCKS;
        let mut host = Host::new();
        let mut r = SealedRegion::create(&mut host, AeadKey([7u8; 32]), blocks, 16).unwrap();
        r.set_parallelism(ThreadPool::new(4));
        r.write_batch(&mut host, 0, &vec![5u8; blocks * 16]).unwrap();
        let rid = r.region_id();
        // Corrupt two blocks in different worker partitions; the batch
        // must report the first one in batch order, as serial would.
        host.adversary_corrupt(rid, 9, |b| b[NONCE_LEN] ^= 1);
        host.adversary_corrupt(rid, (blocks - 3) as u64, |b| b[NONCE_LEN] ^= 1);
        assert_eq!(
            r.read_batch(&mut host, 0, blocks).err(),
            Some(StorageError::TamperDetected { region: rid, index: 9 })
        );
    }

    #[test]
    fn small_batches_stay_serial() {
        // Below PARALLEL_MIN_BLOCKS the pool is bypassed; this is a
        // geometry-only decision, asserted here to pin the threshold.
        let (mut host, mut r) = setup(8, 16);
        r.set_parallelism(ThreadPool::new(4));
        assert_eq!(r.partitions(PARALLEL_MIN_BLOCKS - 1), vec![(0, PARALLEL_MIN_BLOCKS - 1)]);
        assert_eq!(r.partitions(PARALLEL_MIN_BLOCKS).len(), 4);
        r.write_batch(&mut host, 0, &[9u8; 8 * 16]).unwrap();
        assert_eq!(r.read_batch(&mut host, 0, 8).unwrap(), &[9u8; 8 * 16][..]);
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let (mut host, mut r) = setup(1, 16);
        let secret = *b"TOPSECRET_VALUE!";
        r.write(&mut host, 0, &secret).unwrap();
        let sealed = host.adversary_snapshot(r.region_id(), 0).unwrap();
        // The plaintext must not appear anywhere in the sealed bytes.
        assert!(!sealed.windows(4).any(|w| w == &secret[..4]));
    }
}
