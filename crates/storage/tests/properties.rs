//! Property-based tests for sealed storage: a random sequence of writes
//! must read back exactly (model check against a plain map), and any
//! adversarial mutation of any block must be detected.
//!
//! Cases are generated from a seeded [`EnclaveRng`] (the workspace is
//! dependency-free, so no proptest).

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::{EnclaveRng, Host};
use oblidb_storage::{SealedRegion, StorageError};
use std::collections::HashMap;

#[test]
fn random_writes_read_back() {
    let mut rng = EnclaveRng::seed_from_u64(0x57);
    for case in 0..48 {
        let ops: Vec<(u64, u8)> = {
            let n = 1 + rng.below(79) as usize;
            (0..n).map(|_| (rng.below(16), rng.below(256) as u8)).collect()
        };
        let mut host = Host::new();
        let mut region = SealedRegion::create(&mut host, AeadKey([1u8; 32]), 16, 8).unwrap();
        let mut model: HashMap<u64, [u8; 8]> = HashMap::new();
        for (idx, byte) in ops {
            let payload = [byte; 8];
            region.write(&mut host, idx, &payload).unwrap();
            model.insert(idx, payload);
        }
        for i in 0..16u64 {
            let expected = model.get(&i).copied().unwrap_or([0u8; 8]);
            assert_eq!(region.read(&mut host, i).unwrap(), &expected, "case {case} block {i}");
        }
    }
}

#[test]
fn any_corruption_is_detected() {
    let mut rng = EnclaveRng::seed_from_u64(0xC0);
    for case in 0..48 {
        let writes: Vec<(u64, u8)> = {
            let n = 1 + rng.below(19) as usize;
            (0..n).map(|_| (rng.below(8), rng.below(256) as u8)).collect()
        };
        let victim = rng.below(8);
        let offset_seed = rng.next_u64();
        let bit = rng.below(8) as u8;

        let mut host = Host::new();
        let mut region = SealedRegion::create(&mut host, AeadKey([1u8; 32]), 8, 16).unwrap();
        for (idx, byte) in writes {
            region.write(&mut host, idx, &[byte; 16]).unwrap();
        }
        let mut corrupted_len = 0;
        host.adversary_corrupt(region.region_id(), victim, |b| {
            corrupted_len = b.len();
            let i = (offset_seed % b.len() as u64) as usize;
            b[i] ^= 1 << bit;
        });
        assert!(corrupted_len > 0, "case {case}");
        let tampered =
            matches!(region.read(&mut host, victim), Err(StorageError::TamperDetected { .. }));
        assert!(tampered, "case {case}: victim {victim} bit {bit}");
    }
}

#[test]
fn any_rollback_is_detected() {
    let mut rng = EnclaveRng::seed_from_u64(0xB0);
    for case in 0..48 {
        let idx = rng.below(8);
        let first = rng.below(256) as u8;
        let second = rng.below(256) as u8;

        let mut host = Host::new();
        let mut region = SealedRegion::create(&mut host, AeadKey([1u8; 32]), 8, 8).unwrap();
        region.write(&mut host, idx, &[first; 8]).unwrap();
        let stale = host.adversary_snapshot(region.region_id(), idx).unwrap();
        region.write(&mut host, idx, &[second; 8]).unwrap();
        host.adversary_restore(region.region_id(), idx, stale);
        let rolled_back =
            matches!(region.read(&mut host, idx), Err(StorageError::TamperDetected { .. }));
        assert!(rolled_back, "case {case}: idx {idx}");
    }
}
