//! Property-based tests for sealed storage: a random sequence of writes
//! must read back exactly (model check against a plain map), and any
//! adversarial mutation of any block must be detected.

use oblidb_crypto::aead::AeadKey;
use oblidb_enclave::Host;
use oblidb_storage::{SealedRegion, StorageError};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_writes_read_back(
        ops in proptest::collection::vec((0u64..16, any::<u8>()), 1..80),
    ) {
        let mut host = Host::new();
        let mut region =
            SealedRegion::create(&mut host, AeadKey([1u8; 32]), 16, 8).unwrap();
        let mut model: HashMap<u64, [u8; 8]> = HashMap::new();
        for (idx, byte) in ops {
            let payload = [byte; 8];
            region.write(&mut host, idx, &payload).unwrap();
            model.insert(idx, payload);
        }
        for i in 0..16u64 {
            let expected = model.get(&i).copied().unwrap_or([0u8; 8]);
            prop_assert_eq!(region.read(&mut host, i).unwrap(), &expected);
        }
    }

    #[test]
    fn any_corruption_is_detected(
        writes in proptest::collection::vec((0u64..8, any::<u8>()), 1..20),
        victim in 0u64..8,
        offset in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut host = Host::new();
        let mut region =
            SealedRegion::create(&mut host, AeadKey([1u8; 32]), 8, 16).unwrap();
        for (idx, byte) in writes {
            region.write(&mut host, idx, &[byte; 16]).unwrap();
        }
        let mut corrupted_len = 0;
        host.adversary_corrupt(region.region_id(), victim, |b| {
            corrupted_len = b.len();
            let i = offset.index(b.len());
            b[i] ^= 1 << bit;
        });
        prop_assert!(corrupted_len > 0);
        let tampered = matches!(
            region.read(&mut host, victim),
            Err(StorageError::TamperDetected { .. })
        );
        prop_assert!(tampered);
    }

    #[test]
    fn any_rollback_is_detected(
        idx in 0u64..8,
        first in any::<u8>(),
        second in any::<u8>(),
    ) {
        let mut host = Host::new();
        let mut region =
            SealedRegion::create(&mut host, AeadKey([1u8; 32]), 8, 8).unwrap();
        region.write(&mut host, idx, &[first; 8]).unwrap();
        let stale = host.adversary_snapshot(region.region_id(), idx).unwrap();
        region.write(&mut host, idx, &[second; 8]).unwrap();
        host.adversary_restore(region.region_id(), idx, stale);
        let rolled_back = matches!(
            region.read(&mut host, idx),
            Err(StorageError::TamperDetected { .. })
        );
        prop_assert!(rolled_back);
    }
}
