//! Runtime substrate selection: one type, any backend.

use std::path::PathBuf;

use oblidb_enclave::{EnclaveMemory, Host, HostError, HostStats, RegionId, Trace};

use crate::{CachedMemory, DiskMemory, ShardedMemory};

/// Declarative substrate choice, buildable from configuration. Feed the
/// built [`AnySubstrate`] to `Database::with_memory` (or the facade's
/// `oblidb::database_on`) to open the same engine over any backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstrateSpec {
    /// In-RAM [`Host`] (the default substrate).
    Host,
    /// [`DiskMemory`]: `None` uses a self-cleaning temp directory, `Some`
    /// a persistent directory.
    Disk {
        /// Region-file directory; `None` → self-cleaning temp dir.
        dir: Option<PathBuf>,
    },
    /// [`CachedMemory`] over [`Host`] (models host-side caching without
    /// disk latency underneath).
    CachedHost {
        /// Cache capacity in blocks.
        capacity_blocks: usize,
    },
    /// [`CachedMemory`] over [`DiskMemory`]: the larger-than-RAM
    /// configuration.
    CachedDisk {
        /// Region-file directory; `None` → self-cleaning temp dir.
        dir: Option<PathBuf>,
        /// Cache capacity in blocks.
        capacity_blocks: usize,
    },
    /// [`ShardedMemory`] over in-RAM hosts.
    ShardedHost {
        /// Number of shards (≥ 1).
        shards: usize,
    },
    /// [`ShardedMemory`] over disk substrates, one directory per shard
    /// under `dir` (`None` → self-cleaning temp dirs).
    ShardedDisk {
        /// Parent directory for the shard directories; `None` →
        /// self-cleaning temp dirs.
        dir: Option<PathBuf>,
        /// Number of shards (≥ 1).
        shards: usize,
    },
}

impl SubstrateSpec {
    /// Builds the substrate this spec describes.
    pub fn build(&self) -> std::io::Result<AnySubstrate> {
        Ok(match self {
            SubstrateSpec::Host => AnySubstrate::Host(Host::new()),
            SubstrateSpec::Disk { dir } => AnySubstrate::Disk(disk(dir)?),
            SubstrateSpec::CachedHost { capacity_blocks } => {
                AnySubstrate::CachedHost(CachedMemory::new(Host::new(), *capacity_blocks))
            }
            SubstrateSpec::CachedDisk { dir, capacity_blocks } => {
                AnySubstrate::CachedDisk(CachedMemory::new(disk(dir)?, *capacity_blocks))
            }
            SubstrateSpec::ShardedHost { shards } => {
                AnySubstrate::ShardedHost(ShardedMemory::from_fn(*shards, |_| Host::new()))
            }
            SubstrateSpec::ShardedDisk { dir, shards } => {
                let mut inners = Vec::with_capacity(*shards);
                for i in 0..*shards {
                    inners.push(match dir {
                        Some(d) => DiskMemory::create(d.join(format!("shard-{i}")))?,
                        None => DiskMemory::temp()?,
                    });
                }
                AnySubstrate::ShardedDisk(ShardedMemory::new(inners))
            }
        })
    }
}

fn disk(dir: &Option<PathBuf>) -> std::io::Result<DiskMemory> {
    match dir {
        Some(d) => DiskMemory::create(d),
        None => DiskMemory::temp(),
    }
}

/// A runtime-selected [`EnclaveMemory`]: the closed set of substrate
/// stacks the engine ships, behind one concrete type so `Database` keeps
/// a single instantiation per binary while the backend comes from
/// configuration. Built by [`SubstrateSpec::build`].
#[allow(clippy::large_enum_variant)]
pub enum AnySubstrate {
    /// In-RAM host.
    Host(Host),
    /// Disk-backed.
    Disk(DiskMemory),
    /// LRU cache over an in-RAM host.
    CachedHost(CachedMemory<Host>),
    /// LRU cache over disk.
    CachedDisk(CachedMemory<DiskMemory>),
    /// Round-robin shards of in-RAM hosts.
    ShardedHost(ShardedMemory<Host>),
    /// Round-robin shards of disk substrates.
    ShardedDisk(ShardedMemory<DiskMemory>),
}

macro_rules! dispatch {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            AnySubstrate::Host($m) => $body,
            AnySubstrate::Disk($m) => $body,
            AnySubstrate::CachedHost($m) => $body,
            AnySubstrate::CachedDisk($m) => $body,
            AnySubstrate::ShardedHost($m) => $body,
            AnySubstrate::ShardedDisk($m) => $body,
        }
    };
}

impl AnySubstrate {
    /// A short label for reports ("host", "disk", "cached-disk", …).
    pub fn label(&self) -> &'static str {
        match self {
            AnySubstrate::Host(_) => "host",
            AnySubstrate::Disk(_) => "disk",
            AnySubstrate::CachedHost(_) => "cached-host",
            AnySubstrate::CachedDisk(_) => "cached-disk",
            AnySubstrate::ShardedHost(_) => "sharded-host",
            AnySubstrate::ShardedDisk(_) => "sharded-disk",
        }
    }

    /// Sets the simulated per-crossing cost on the layer that models the
    /// enclave boundary, so substrate costs calibrate on the same axis as
    /// [`Host::set_crossing_cost`]. For cached substrates that is the
    /// *wrapper only*: a miss's inner fetch is a host-side cache fill,
    /// not a second enclave transition, so the inner substrate stays at
    /// its real (unspun) cost.
    pub fn set_crossing_cost(&mut self, spins: u32) {
        match self {
            AnySubstrate::Host(h) => h.set_crossing_cost(spins),
            AnySubstrate::Disk(d) => d.set_crossing_cost(spins),
            AnySubstrate::CachedHost(c) => c.set_crossing_cost(spins),
            AnySubstrate::CachedDisk(c) => c.set_crossing_cost(spins),
            AnySubstrate::ShardedHost(s) => {
                for i in 0..s.shard_count() {
                    s.shard_mut(i).set_crossing_cost(spins);
                }
            }
            AnySubstrate::ShardedDisk(s) => {
                for i in 0..s.shard_count() {
                    s.shard_mut(i).set_crossing_cost(spins);
                }
            }
        }
    }

    /// Cache counters when this substrate has a cache layer.
    pub fn cache_stats(&self) -> Option<crate::CacheStats> {
        match self {
            AnySubstrate::CachedHost(c) => Some(c.cache_stats()),
            AnySubstrate::CachedDisk(c) => Some(c.cache_stats()),
            _ => None,
        }
    }

    /// The inner (backing) substrate's counters when this substrate has a
    /// cache layer: the traffic that survived cache absorption.
    pub fn backing_stats(&self) -> Option<HostStats> {
        match self {
            AnySubstrate::CachedHost(c) => Some(c.inner().stats()),
            AnySubstrate::CachedDisk(c) => Some(c.inner().stats()),
            _ => None,
        }
    }
}

impl EnclaveMemory for AnySubstrate {
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> RegionId {
        dispatch!(self, m => m.alloc_region(blocks, block_size))
    }

    fn free_region(&mut self, region: RegionId) {
        dispatch!(self, m => m.free_region(region))
    }

    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        dispatch!(self, m => m.grow_region(region, new_blocks))
    }

    fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        dispatch!(self, m => m.region_len(region))
    }

    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        dispatch!(self, m => m.region_block_size(region))
    }

    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        dispatch!(self, m => m.read(region, index))
    }

    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        dispatch!(self, m => m.write(region, index, data))
    }

    fn read_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        dispatch!(self, m => m.read_blocks(region, start, count, out))
    }

    fn read_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        dispatch!(self, m => m.read_blocks_at(region, indices, out))
    }

    fn write_blocks(&mut self, region: RegionId, start: u64, data: &[u8]) -> Result<(), HostError> {
        dispatch!(self, m => m.write_blocks(region, start, data))
    }

    fn write_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        data: &[u8],
    ) -> Result<(), HostError> {
        dispatch!(self, m => m.write_blocks_at(region, indices, data))
    }

    fn start_trace(&mut self) {
        dispatch!(self, m => m.start_trace())
    }

    fn take_trace(&mut self) -> Trace {
        dispatch!(self, m => m.take_trace())
    }

    fn tracing(&self) -> bool {
        dispatch!(self, m => m.tracing())
    }

    fn stats(&self) -> HostStats {
        dispatch!(self, m => m.stats())
    }

    fn reset_stats(&mut self) {
        dispatch!(self, m => m.reset_stats())
    }

    fn retains_payloads(&self) -> bool {
        dispatch!(self, m => m.retains_payloads())
    }

    fn sync(&mut self) -> Result<(), HostError> {
        dispatch!(self, m => m.sync())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: &SubstrateSpec) {
        let mut m = spec.build().unwrap();
        let label = m.label();
        let r = m.alloc_region(4, 8);
        m.write(r, 2, &[5u8; 8]).unwrap();
        if m.retains_payloads() {
            assert_eq!(m.read(r, 2).unwrap(), &[5u8; 8], "{label}");
        }
        assert_eq!(m.stats().writes, 1, "{label}");
        m.sync().unwrap();
    }

    #[test]
    fn every_spec_builds_and_roundtrips() {
        for spec in [
            SubstrateSpec::Host,
            SubstrateSpec::Disk { dir: None },
            SubstrateSpec::CachedHost { capacity_blocks: 2 },
            SubstrateSpec::CachedDisk { dir: None, capacity_blocks: 2 },
            SubstrateSpec::ShardedHost { shards: 3 },
            SubstrateSpec::ShardedDisk { dir: None, shards: 2 },
        ] {
            roundtrip(&spec);
        }
    }

    #[test]
    fn labels_and_cache_accessors() {
        let m = SubstrateSpec::CachedDisk { dir: None, capacity_blocks: 4 }.build().unwrap();
        assert_eq!(m.label(), "cached-disk");
        assert_eq!(m.cache_stats(), Some(crate::CacheStats::default()));
        assert_eq!(m.backing_stats(), Some(HostStats::default()));
        let h = SubstrateSpec::Host.build().unwrap();
        assert!(h.cache_stats().is_none());
    }
}
