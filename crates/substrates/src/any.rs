//! Runtime substrate selection: one type, any backend.

use std::path::PathBuf;

use oblidb_enclave::{EnclaveMemory, Host, HostError, HostStats, RegionId, Trace};

use crate::{CachedMemory, DiskMemory, ShardedMemory};

/// Declarative substrate choice, buildable from configuration. Feed the
/// built [`AnySubstrate`] to `Database::with_memory` (or the facade's
/// `oblidb::database_on`) to open the same engine over any backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubstrateSpec {
    /// In-RAM [`Host`] (the default substrate).
    Host,
    /// [`DiskMemory`]: `None` uses a self-cleaning temp directory, `Some`
    /// a persistent directory.
    Disk {
        /// Region-file directory; `None` → self-cleaning temp dir.
        dir: Option<PathBuf>,
    },
    /// [`CachedMemory`] over [`Host`] (models host-side caching without
    /// disk latency underneath).
    CachedHost {
        /// Cache capacity in blocks.
        capacity_blocks: usize,
    },
    /// [`CachedMemory`] over [`DiskMemory`]: the larger-than-RAM
    /// configuration.
    CachedDisk {
        /// Region-file directory; `None` → self-cleaning temp dir.
        dir: Option<PathBuf>,
        /// Cache capacity in blocks.
        capacity_blocks: usize,
    },
    /// [`ShardedMemory`] over in-RAM hosts.
    ShardedHost {
        /// Number of shards (≥ 1).
        shards: usize,
    },
    /// [`ShardedMemory`] over disk substrates, one directory per shard
    /// under `dir` (`None` → self-cleaning temp dirs).
    ShardedDisk {
        /// Parent directory for the shard directories; `None` →
        /// self-cleaning temp dirs.
        dir: Option<PathBuf>,
        /// Number of shards (≥ 1).
        shards: usize,
    },
}

/// Why a substrate spec string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSubstrateError {
    /// Unknown leading keyword (expected `host`, `disk`, `cached`, or
    /// `sharded`).
    UnknownKind(String),
    /// `cached:`/`sharded:` wraps something that is not `host`/`disk`.
    UnknownInner(String),
    /// A numeric field (cache blocks, shard count) failed to parse or was
    /// zero.
    BadNumber {
        /// Which field.
        field: &'static str,
        /// The offending text.
        got: String,
    },
    /// The spec ended where more was required (e.g. `sharded:4`).
    Incomplete(&'static str),
}

impl std::fmt::Display for ParseSubstrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseSubstrateError::UnknownKind(s) => {
                write!(f, "unknown substrate '{s}' (expected host | disk[:dir] | cached[:blocks]:<inner> | sharded:<n>:<inner>)")
            }
            ParseSubstrateError::UnknownInner(s) => {
                write!(f, "unknown inner substrate '{s}' (expected host or disk[:dir])")
            }
            ParseSubstrateError::BadNumber { field, got } => {
                write!(f, "invalid {field} '{got}' (expected a positive integer)")
            }
            ParseSubstrateError::Incomplete(what) => write!(f, "spec is missing {what}"),
        }
    }
}

impl std::error::Error for ParseSubstrateError {}

/// Default hot-block cache capacity when a `cached:` spec names none.
pub const DEFAULT_CACHE_BLOCKS: usize = 4096;

impl std::str::FromStr for SubstrateSpec {
    type Err = ParseSubstrateError;

    /// Parses the configuration-string form used by `OBLIDB_SUBSTRATE`:
    ///
    /// * `host`
    /// * `disk` | `disk:/path/to/dir`
    /// * `cached:<inner>` | `cached:<blocks>:<inner>` — e.g.
    ///   `cached:disk:/data`, `cached:8192:host`
    /// * `sharded:<n>:<inner>` — e.g. `sharded:4:host`,
    ///   `sharded:2:disk:/data`
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        fn inner_disk_dir(rest: Option<&str>) -> Option<PathBuf> {
            rest.filter(|p| !p.is_empty()).map(PathBuf::from)
        }
        let (kind, rest) = match s.split_once(':') {
            Some((k, r)) => (k, Some(r)),
            None => (s, None),
        };
        match kind.trim().to_ascii_lowercase().as_str() {
            "host" => Ok(SubstrateSpec::Host),
            "disk" => Ok(SubstrateSpec::Disk { dir: inner_disk_dir(rest) }),
            "cached" => {
                let rest = rest.ok_or(ParseSubstrateError::Incomplete("an inner substrate"))?;
                // Optional leading block count.
                let (capacity_blocks, inner) = match rest.split_once(':') {
                    Some((first, tail)) if first.chars().all(|c| c.is_ascii_digit()) => {
                        let n = first.parse::<usize>().ok().filter(|n| *n > 0).ok_or(
                            ParseSubstrateError::BadNumber {
                                field: "cache block count",
                                got: first.to_string(),
                            },
                        )?;
                        (n, tail)
                    }
                    _ => (DEFAULT_CACHE_BLOCKS, rest),
                };
                let (ik, irest) = match inner.split_once(':') {
                    Some((k, r)) => (k, Some(r)),
                    None => (inner, None),
                };
                match ik.trim().to_ascii_lowercase().as_str() {
                    "host" => Ok(SubstrateSpec::CachedHost { capacity_blocks }),
                    "disk" => Ok(SubstrateSpec::CachedDisk {
                        dir: inner_disk_dir(irest),
                        capacity_blocks,
                    }),
                    other => Err(ParseSubstrateError::UnknownInner(other.to_string())),
                }
            }
            "sharded" => {
                let rest = rest.ok_or(ParseSubstrateError::Incomplete("a shard count"))?;
                let (count, inner) = rest
                    .split_once(':')
                    .ok_or(ParseSubstrateError::Incomplete("an inner substrate"))?;
                let shards = count.parse::<usize>().ok().filter(|n| *n > 0).ok_or(
                    ParseSubstrateError::BadNumber { field: "shard count", got: count.to_string() },
                )?;
                let (ik, irest) = match inner.split_once(':') {
                    Some((k, r)) => (k, Some(r)),
                    None => (inner, None),
                };
                match ik.trim().to_ascii_lowercase().as_str() {
                    "host" => Ok(SubstrateSpec::ShardedHost { shards }),
                    "disk" => Ok(SubstrateSpec::ShardedDisk { dir: inner_disk_dir(irest), shards }),
                    other => Err(ParseSubstrateError::UnknownInner(other.to_string())),
                }
            }
            other => Err(ParseSubstrateError::UnknownKind(other.to_string())),
        }
    }
}

impl SubstrateSpec {
    /// Reads the spec from the `OBLIDB_SUBSTRATE` environment variable
    /// ([`SubstrateSpec::Host`] when unset or empty).
    pub fn from_env() -> Result<Self, ParseSubstrateError> {
        match std::env::var("OBLIDB_SUBSTRATE") {
            Ok(s) if !s.trim().is_empty() => s.trim().parse(),
            _ => Ok(SubstrateSpec::Host),
        }
    }

    /// The substrate label this spec builds — the same string
    /// [`AnySubstrate::label`] reports, and the conventional key for a
    /// per-substrate cost profile (`oblidb_core::CostProfile::named`).
    pub fn profile_name(&self) -> &'static str {
        match self {
            SubstrateSpec::Host => "host",
            SubstrateSpec::Disk { .. } => "disk",
            SubstrateSpec::CachedHost { .. } => "cached-host",
            SubstrateSpec::CachedDisk { .. } => "cached-disk",
            SubstrateSpec::ShardedHost { .. } => "sharded-host",
            SubstrateSpec::ShardedDisk { .. } => "sharded-disk",
        }
    }

    /// The directory a database over this spec persists into (region
    /// files, region tables, and the sealed database manifest), when the
    /// spec names one. `None` for in-memory and self-cleaning-temp specs —
    /// those have nothing durable to reopen.
    pub fn persist_dir(&self) -> Option<&std::path::Path> {
        match self {
            SubstrateSpec::Disk { dir: Some(d) }
            | SubstrateSpec::CachedDisk { dir: Some(d), .. }
            | SubstrateSpec::ShardedDisk { dir: Some(d), .. } => Some(d),
            _ => None,
        }
    }

    /// Re-attaches to the populated store this spec describes: the
    /// reopen-side counterpart of [`SubstrateSpec::build`], using
    /// [`DiskMemory::open`] underneath. Fails with
    /// [`std::io::ErrorKind::Unsupported`] for specs with no durable state
    /// (in-memory hosts, self-cleaning temp dirs).
    pub fn open(&self) -> std::io::Result<AnySubstrate> {
        let nothing_durable = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!("substrate spec '{what}' has no persisted state to reopen"),
            )
        };
        Ok(match self {
            SubstrateSpec::Disk { dir: Some(d) } => AnySubstrate::Disk(DiskMemory::open(d)?),
            SubstrateSpec::CachedDisk { dir: Some(d), capacity_blocks } => {
                AnySubstrate::CachedDisk(CachedMemory::new(DiskMemory::open(d)?, *capacity_blocks))
            }
            SubstrateSpec::ShardedDisk { dir: Some(d), shards } => {
                let mut inners = Vec::with_capacity(*shards);
                for i in 0..*shards {
                    inners.push(DiskMemory::open(d.join(format!("shard-{i}")))?);
                }
                let slots: Vec<usize> = inners.iter().map(DiskMemory::region_slots).collect();
                AnySubstrate::ShardedDisk(ShardedMemory::reattach(inners, &slots))
            }
            SubstrateSpec::Disk { dir: None }
            | SubstrateSpec::CachedDisk { dir: None, .. }
            | SubstrateSpec::ShardedDisk { dir: None, .. } => {
                return Err(nothing_durable("disk (temp dir)"));
            }
            other => return Err(nothing_durable(other.profile_name())),
        })
    }

    /// Builds the substrate this spec describes.
    pub fn build(&self) -> std::io::Result<AnySubstrate> {
        Ok(match self {
            SubstrateSpec::Host => AnySubstrate::Host(Host::new()),
            SubstrateSpec::Disk { dir } => AnySubstrate::Disk(disk(dir)?),
            SubstrateSpec::CachedHost { capacity_blocks } => {
                AnySubstrate::CachedHost(CachedMemory::new(Host::new(), *capacity_blocks))
            }
            SubstrateSpec::CachedDisk { dir, capacity_blocks } => {
                AnySubstrate::CachedDisk(CachedMemory::new(disk(dir)?, *capacity_blocks))
            }
            SubstrateSpec::ShardedHost { shards } => {
                AnySubstrate::ShardedHost(ShardedMemory::from_fn(*shards, |_| Host::new()))
            }
            SubstrateSpec::ShardedDisk { dir, shards } => {
                let mut inners = Vec::with_capacity(*shards);
                for i in 0..*shards {
                    inners.push(match dir {
                        Some(d) => DiskMemory::create(d.join(format!("shard-{i}")))?,
                        None => DiskMemory::temp()?,
                    });
                }
                AnySubstrate::ShardedDisk(ShardedMemory::new(inners))
            }
        })
    }
}

fn disk(dir: &Option<PathBuf>) -> std::io::Result<DiskMemory> {
    match dir {
        Some(d) => DiskMemory::create(d),
        None => DiskMemory::temp(),
    }
}

/// A runtime-selected [`EnclaveMemory`]: the closed set of substrate
/// stacks the engine ships, behind one concrete type so `Database` keeps
/// a single instantiation per binary while the backend comes from
/// configuration. Built by [`SubstrateSpec::build`].
#[allow(clippy::large_enum_variant)]
pub enum AnySubstrate {
    /// In-RAM host.
    Host(Host),
    /// Disk-backed.
    Disk(DiskMemory),
    /// LRU cache over an in-RAM host.
    CachedHost(CachedMemory<Host>),
    /// LRU cache over disk.
    CachedDisk(CachedMemory<DiskMemory>),
    /// Round-robin shards of in-RAM hosts.
    ShardedHost(ShardedMemory<Host>),
    /// Round-robin shards of disk substrates.
    ShardedDisk(ShardedMemory<DiskMemory>),
}

macro_rules! dispatch {
    ($self:expr, $m:ident => $body:expr) => {
        match $self {
            AnySubstrate::Host($m) => $body,
            AnySubstrate::Disk($m) => $body,
            AnySubstrate::CachedHost($m) => $body,
            AnySubstrate::CachedDisk($m) => $body,
            AnySubstrate::ShardedHost($m) => $body,
            AnySubstrate::ShardedDisk($m) => $body,
        }
    };
}

impl AnySubstrate {
    /// A short label for reports ("host", "disk", "cached-disk", …).
    pub fn label(&self) -> &'static str {
        match self {
            AnySubstrate::Host(_) => "host",
            AnySubstrate::Disk(_) => "disk",
            AnySubstrate::CachedHost(_) => "cached-host",
            AnySubstrate::CachedDisk(_) => "cached-disk",
            AnySubstrate::ShardedHost(_) => "sharded-host",
            AnySubstrate::ShardedDisk(_) => "sharded-disk",
        }
    }

    /// Sets the simulated per-crossing cost on the layer that models the
    /// enclave boundary, so substrate costs calibrate on the same axis as
    /// [`Host::set_crossing_cost`]. For cached substrates that is the
    /// *wrapper only*: a miss's inner fetch is a host-side cache fill,
    /// not a second enclave transition, so the inner substrate stays at
    /// its real (unspun) cost.
    pub fn set_crossing_cost(&mut self, spins: u32) {
        match self {
            AnySubstrate::Host(h) => h.set_crossing_cost(spins),
            AnySubstrate::Disk(d) => d.set_crossing_cost(spins),
            AnySubstrate::CachedHost(c) => c.set_crossing_cost(spins),
            AnySubstrate::CachedDisk(c) => c.set_crossing_cost(spins),
            AnySubstrate::ShardedHost(s) => {
                for i in 0..s.shard_count() {
                    s.shard_mut(i).set_crossing_cost(spins);
                }
            }
            AnySubstrate::ShardedDisk(s) => {
                for i in 0..s.shard_count() {
                    s.shard_mut(i).set_crossing_cost(spins);
                }
            }
        }
    }

    /// Sets the simulated per-crossing *stall* (worker blocked on the
    /// boundary transition, e.g. OCALL service time) on the layer that
    /// models the enclave boundary — same layer selection as
    /// [`AnySubstrate::set_crossing_cost`]. Stalls, unlike spins, overlap
    /// across parallel workers, which is what the parallel bench prices.
    pub fn set_crossing_stall(&mut self, nanos: u64) {
        match self {
            AnySubstrate::Host(h) => h.set_crossing_stall(nanos),
            AnySubstrate::Disk(d) => d.set_crossing_stall(nanos),
            AnySubstrate::CachedHost(c) => c.set_crossing_stall(nanos),
            AnySubstrate::CachedDisk(c) => c.set_crossing_stall(nanos),
            AnySubstrate::ShardedHost(s) => {
                for i in 0..s.shard_count() {
                    s.shard_mut(i).set_crossing_stall(nanos);
                }
            }
            AnySubstrate::ShardedDisk(s) => {
                for i in 0..s.shard_count() {
                    s.shard_mut(i).set_crossing_stall(nanos);
                }
            }
        }
    }

    /// Cache counters when this substrate has a cache layer.
    pub fn cache_stats(&self) -> Option<crate::CacheStats> {
        match self {
            AnySubstrate::CachedHost(c) => Some(c.cache_stats()),
            AnySubstrate::CachedDisk(c) => Some(c.cache_stats()),
            _ => None,
        }
    }

    /// The inner (backing) substrate's counters when this substrate has a
    /// cache layer: the traffic that survived cache absorption.
    pub fn backing_stats(&self) -> Option<HostStats> {
        match self {
            AnySubstrate::CachedHost(c) => Some(c.inner().stats()),
            AnySubstrate::CachedDisk(c) => Some(c.inner().stats()),
            _ => None,
        }
    }
}

impl EnclaveMemory for AnySubstrate {
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> Result<RegionId, HostError> {
        dispatch!(self, m => m.alloc_region(blocks, block_size))
    }

    fn free_region(&mut self, region: RegionId) -> Result<(), HostError> {
        dispatch!(self, m => m.free_region(region))
    }

    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        dispatch!(self, m => m.grow_region(region, new_blocks))
    }

    fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        dispatch!(self, m => m.region_len(region))
    }

    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        dispatch!(self, m => m.region_block_size(region))
    }

    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        dispatch!(self, m => m.read(region, index))
    }

    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        dispatch!(self, m => m.write(region, index, data))
    }

    fn read_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        dispatch!(self, m => m.read_blocks(region, start, count, out))
    }

    fn read_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        dispatch!(self, m => m.read_blocks_at(region, indices, out))
    }

    fn write_blocks(&mut self, region: RegionId, start: u64, data: &[u8]) -> Result<(), HostError> {
        dispatch!(self, m => m.write_blocks(region, start, data))
    }

    fn write_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        data: &[u8],
    ) -> Result<(), HostError> {
        dispatch!(self, m => m.write_blocks_at(region, indices, data))
    }

    fn start_trace(&mut self) {
        dispatch!(self, m => m.start_trace())
    }

    fn take_trace(&mut self) -> Trace {
        dispatch!(self, m => m.take_trace())
    }

    fn tracing(&self) -> bool {
        dispatch!(self, m => m.tracing())
    }

    fn stats(&self) -> HostStats {
        dispatch!(self, m => m.stats())
    }

    fn reset_stats(&mut self) {
        dispatch!(self, m => m.reset_stats())
    }

    fn retains_payloads(&self) -> bool {
        dispatch!(self, m => m.retains_payloads())
    }

    fn sync(&mut self) -> Result<(), HostError> {
        dispatch!(self, m => m.sync())
    }

    fn sync_region(&mut self, region: RegionId) -> Result<(), HostError> {
        dispatch!(self, m => m.sync_region(region))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: &SubstrateSpec) {
        let mut m = spec.build().unwrap();
        let label = m.label();
        let r = m.alloc_region(4, 8).unwrap();
        m.write(r, 2, &[5u8; 8]).unwrap();
        if m.retains_payloads() {
            assert_eq!(m.read(r, 2).unwrap(), &[5u8; 8], "{label}");
        }
        assert_eq!(m.stats().writes, 1, "{label}");
        m.sync().unwrap();
    }

    #[test]
    fn every_spec_builds_and_roundtrips() {
        for spec in [
            SubstrateSpec::Host,
            SubstrateSpec::Disk { dir: None },
            SubstrateSpec::CachedHost { capacity_blocks: 2 },
            SubstrateSpec::CachedDisk { dir: None, capacity_blocks: 2 },
            SubstrateSpec::ShardedHost { shards: 3 },
            SubstrateSpec::ShardedDisk { dir: None, shards: 2 },
        ] {
            roundtrip(&spec);
        }
    }

    #[test]
    fn spec_parses_from_strings() {
        let cases: Vec<(&str, SubstrateSpec)> = vec![
            ("host", SubstrateSpec::Host),
            ("disk", SubstrateSpec::Disk { dir: None }),
            ("disk:/tmp/obli", SubstrateSpec::Disk { dir: Some("/tmp/obli".into()) }),
            ("cached:host", SubstrateSpec::CachedHost { capacity_blocks: DEFAULT_CACHE_BLOCKS }),
            ("cached:512:host", SubstrateSpec::CachedHost { capacity_blocks: 512 }),
            (
                "cached:disk:/data",
                SubstrateSpec::CachedDisk {
                    dir: Some("/data".into()),
                    capacity_blocks: DEFAULT_CACHE_BLOCKS,
                },
            ),
            ("cached:128:disk", SubstrateSpec::CachedDisk { dir: None, capacity_blocks: 128 }),
            ("sharded:4:host", SubstrateSpec::ShardedHost { shards: 4 }),
            (
                "sharded:2:disk:/data",
                SubstrateSpec::ShardedDisk { dir: Some("/data".into()), shards: 2 },
            ),
        ];
        for (text, expect) in cases {
            assert_eq!(text.parse::<SubstrateSpec>().unwrap(), expect, "{text}");
        }
    }

    #[test]
    fn spec_parse_errors_are_typed() {
        assert!(matches!(
            "floppy".parse::<SubstrateSpec>(),
            Err(ParseSubstrateError::UnknownKind(k)) if k == "floppy"
        ));
        assert!(matches!(
            "cached:tape".parse::<SubstrateSpec>(),
            Err(ParseSubstrateError::UnknownInner(k)) if k == "tape"
        ));
        assert!(matches!(
            "sharded:0:host".parse::<SubstrateSpec>(),
            Err(ParseSubstrateError::BadNumber { field: "shard count", .. })
        ));
        assert!(matches!(
            "cached:0:host".parse::<SubstrateSpec>(),
            Err(ParseSubstrateError::BadNumber { field: "cache block count", .. })
        ));
        assert!(matches!(
            "sharded:4".parse::<SubstrateSpec>(),
            Err(ParseSubstrateError::Incomplete(_))
        ));
        assert!(matches!(
            "cached".parse::<SubstrateSpec>(),
            Err(ParseSubstrateError::Incomplete(_))
        ));
        // Errors render a usable hint.
        let msg = "floppy".parse::<SubstrateSpec>().unwrap_err().to_string();
        assert!(msg.contains("expected host | disk"), "{msg}");
    }

    #[test]
    fn profile_names_match_labels() {
        for text in ["host", "disk", "cached:host", "cached:disk", "sharded:2:host"] {
            let spec: SubstrateSpec = text.parse().unwrap();
            let built = spec.build().unwrap();
            assert_eq!(spec.profile_name(), built.label(), "{text}");
        }
    }

    #[test]
    fn labels_and_cache_accessors() {
        let m = SubstrateSpec::CachedDisk { dir: None, capacity_blocks: 4 }.build().unwrap();
        assert_eq!(m.label(), "cached-disk");
        assert_eq!(m.cache_stats(), Some(crate::CacheStats::default()));
        assert_eq!(m.backing_stats(), Some(HostStats::default()));
        let h = SubstrateSpec::Host.build().unwrap();
        assert!(h.cache_stats().is_none());
    }
}
