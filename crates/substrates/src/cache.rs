//! A write-back LRU of hot sealed blocks over any inner substrate.

use std::collections::{BTreeMap, HashMap};

use oblidb_enclave::{
    batch_count, AccessEvent, AccessKind, CrossingCost, EnclaveMemory, HostError, HostStats,
    RegionId, Trace,
};

/// Cache-level counters, separate from the [`HostStats`] access counters
/// (which describe the *logical* stream the enclave issued).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Logical accesses served from the cache.
    pub hits: u64,
    /// Logical accesses that had to touch the inner substrate.
    pub misses: u64,
    /// Blocks dropped to make room.
    pub evictions: u64,
    /// Dirty blocks written back to the inner substrate on eviction.
    pub writebacks: u64,
    /// Dirty blocks flushed by [`EnclaveMemory::sync`].
    pub flushed: u64,
}

impl CacheStats {
    /// Hit fraction of all logical accesses (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    data: Vec<u8>,
    dirty: bool,
    tick: u64,
}

/// An LRU cache of hot sealed blocks wrapping any [`EnclaveMemory`].
///
/// The cache models (and later exploits) host-side caching **without
/// weakening the trace model**: every logical block access is recorded in
/// the wrapper's trace and [`HostStats`] exactly as a raw
/// [`Host`](oblidb_enclave::Host) would record it — same events, same
/// order, same counters, failed attempts included — so obliviousness
/// tests comparing transcripts are oblivious to the cache's existence.
/// What changes is the *inner* substrate's traffic: hits never touch it,
/// and `inner().stats()` shows the savings (the interesting number when
/// the inner store is [`DiskMemory`](crate::DiskMemory)).
///
/// Policy: write-back with per-block dirty bits. Writes update only the
/// cache; dirty blocks reach the inner substrate on eviction or
/// [`EnclaveMemory::sync`] (which flushes in deterministic region/index
/// order, coalescing consecutive runs into batched inner writes, then
/// syncs the inner substrate). Evictions are paid the same way: a batched
/// operation pre-evicts everything it displaces in one wave, so
/// consecutive dirty victims drain as one batched inner write per run
/// instead of one single-block write per eviction. Capacity is counted in
/// blocks; a batched read larger than the capacity still completes — it
/// just cannot retain the whole run.
///
/// Consecutive misses inside a batched read are coalesced into one
/// batched inner fetch (one inner crossing per run); a failing run is
/// replayed per block, preserving `Host`-exact failure ordering inside
/// batches.
pub struct CachedMemory<M: EnclaveMemory> {
    inner: M,
    capacity: usize,
    entries: HashMap<(RegionId, u64), Entry>,
    /// LRU order: tick → key. Ticks are unique (monotone counter), so the
    /// first entry is always the least recently used block.
    lru: BTreeMap<u64, (RegionId, u64)>,
    tick: u64,
    trace: Option<Vec<AccessEvent>>,
    stats: HostStats,
    cache_stats: CacheStats,
    crossing: CrossingCost,
}

impl<M: EnclaveMemory> CachedMemory<M> {
    /// Wraps `inner` with an LRU holding at most `capacity_blocks` blocks.
    pub fn new(inner: M, capacity_blocks: usize) -> Self {
        assert!(capacity_blocks > 0, "cache capacity must be at least one block");
        CachedMemory {
            inner,
            capacity: capacity_blocks,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            trace: None,
            stats: HostStats::default(),
            cache_stats: CacheStats::default(),
            crossing: CrossingCost::default(),
        }
    }

    /// The inner substrate (e.g. to read its stats: the backing traffic
    /// after cache absorption).
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutable access to the inner substrate. Mutating blocks directly
    /// through this bypasses the cache and can make cached copies stale —
    /// meant for substrate-level configuration (crossing costs, traces of
    /// backing traffic), not block I/O.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// Cache-level counters (hits/misses/evictions/writebacks/flushes).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Sets the simulated per-crossing cost of the *logical* boundary
    /// (every cached or uncached access still crosses it once); see
    /// [`Host::set_crossing_cost`](oblidb_enclave::Host::set_crossing_cost).
    /// Preserved across [`EnclaveMemory::reset_stats`].
    pub fn set_crossing_cost(&mut self, spins: u32) {
        self.crossing.spins = spins;
    }

    /// Sets the simulated per-crossing stall of the *logical* boundary;
    /// see [`Host::set_crossing_stall`](oblidb_enclave::Host::set_crossing_stall).
    /// Preserved across [`EnclaveMemory::reset_stats`].
    pub fn set_crossing_stall(&mut self, nanos: u64) {
        self.crossing.stall_nanos = nanos;
    }

    fn cross(stats: &mut HostStats, cost: CrossingCost) {
        stats.crossings += 1;
        stats.stall_nanos += cost.stall_nanos;
        cost.pay();
    }

    fn record(&mut self, region: RegionId, index: u64, kind: AccessKind) {
        if let Some(t) = &mut self.trace {
            t.push(AccessEvent { region, index, kind });
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Moves `key` to most-recently-used.
    fn touch(&mut self, key: (RegionId, u64)) {
        let tick = self.next_tick();
        if let Some(e) = self.entries.get_mut(&key) {
            self.lru.remove(&e.tick);
            e.tick = tick;
            self.lru.insert(tick, key);
        }
    }

    /// Evicts the `count` least-recently-used blocks in one wave.
    ///
    /// Dirty victims are written back first, sorted by (region, index)
    /// with consecutive runs **coalesced** into single batched inner
    /// writes — a cache full of sequentially-written dirty blocks drains
    /// in one inner crossing per run instead of one per block. A failed
    /// write-back aborts the wave before any victim is dropped: every
    /// entry stays cached (dirty ones still dirty), so the only
    /// up-to-date copy of a block is never lost to an inner I/O error.
    fn evict_many(&mut self, count: usize) -> Result<(), HostError> {
        let count = count.min(self.entries.len());
        if count == 0 {
            return Ok(());
        }
        let victims: Vec<(RegionId, u64)> = self.lru.values().copied().take(count).collect();
        let mut dirty: Vec<(RegionId, u64)> =
            victims.iter().copied().filter(|k| self.entries[k].dirty).collect();
        dirty.sort_unstable();
        let mut i = 0;
        while i < dirty.len() {
            let (region, start) = dirty[i];
            let mut run = 1;
            while i + run < dirty.len()
                && dirty[i + run].0 == region
                && dirty[i + run].1 == start + run as u64
            {
                run += 1;
            }
            let mut buf = Vec::new();
            for k in &dirty[i..i + run] {
                buf.extend_from_slice(&self.entries[k].data);
            }
            self.inner.write_blocks(region, start, &buf)?;
            for k in &dirty[i..i + run] {
                self.entries.get_mut(k).expect("dirty key cached").dirty = false;
                self.cache_stats.writebacks += 1;
            }
            i += run;
        }
        // Every write-back landed; now the victims can be dropped.
        for key in victims {
            let e = self.entries.remove(&key).expect("victim cached");
            self.lru.remove(&e.tick);
            self.cache_stats.evictions += 1;
        }
        Ok(())
    }

    /// Pre-evicts enough blocks for `incoming` new keys in one coalesced
    /// wave, so a batched operation pays one write-back run per dirty
    /// stretch instead of one single-block inner write per install.
    fn reserve(&mut self, incoming: usize) -> Result<(), HostError> {
        let need = (self.entries.len() + incoming.min(self.capacity)).saturating_sub(self.capacity);
        self.evict_many(need)
    }

    /// Inserts (or replaces) a cached block, evicting as needed.
    fn install(
        &mut self,
        key: (RegionId, u64),
        data: Vec<u8>,
        dirty: bool,
    ) -> Result<(), HostError> {
        if let Some(e) = self.entries.get_mut(&key) {
            e.data = data;
            e.dirty = e.dirty || dirty;
            self.touch(key);
            return Ok(());
        }
        if self.entries.len() >= self.capacity {
            self.evict_many(1)?;
        }
        let tick = self.next_tick();
        self.entries.insert(key, Entry { data, dirty, tick });
        self.lru.insert(tick, key);
        Ok(())
    }

    /// Counts the distinct in-bounds indices a batch will newly cache —
    /// the slot count [`CachedMemory::reserve`] frees up front.
    fn incoming(&self, region: RegionId, len: u64, idx: &[u64]) -> usize {
        let mut uniq: Vec<u64> = idx
            .iter()
            .copied()
            .filter(|&i| i < len && !self.entries.contains_key(&(region, i)))
            .collect();
        uniq.sort_unstable();
        uniq.dedup();
        uniq.len()
    }

    /// Ensures `key`'s block is cached (fetching from inner on a miss)
    /// and LRU-touched; returns its payload length. Trace/bounds must be
    /// handled by the caller.
    fn load(&mut self, key: (RegionId, u64)) -> Result<usize, HostError> {
        if self.entries.contains_key(&key) {
            self.cache_stats.hits += 1;
            self.touch(key);
        } else {
            let data = self.inner.read(key.0, key.1)?.to_vec();
            self.cache_stats.misses += 1;
            self.install(key, data, false)?;
        }
        Ok(self.entries[&key].data.len())
    }

    /// Shared body of the batched reads: per-block trace/validate/load
    /// through the cache (Host's per-block contract), one logical
    /// crossing. `region_len` is pre-fetched by the caller (Host checks
    /// the region before recording any batch event).
    ///
    /// Consecutive cache misses are **coalesced**: a run of
    /// block-consecutive, uncached, in-bounds indices is fetched from the
    /// inner substrate with one batched `read_blocks` call — one inner
    /// crossing for the whole run, where the per-block path paid one per
    /// miss (the decisive saving when the inner store is
    /// [`DiskMemory`](crate::DiskMemory)). A run whose batched fetch
    /// fails is replayed per block so errors keep Host-exact ordering,
    /// state, and identity.
    fn read_gather(
        &mut self,
        region: RegionId,
        len: u64,
        indices: impl Iterator<Item = u64>,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        out.clear();
        let block_size = self.inner.region_block_size(region)?;
        let idx: Vec<u64> = indices.collect();
        // One coalesced eviction wave up front, instead of a single-block
        // write-back per miss installed below.
        let incoming = self.incoming(region, len, &idx);
        self.reserve(incoming)?;
        let mut crossed = false;
        let mut fetched = Vec::new();
        let mut i = 0;
        while i < idx.len() {
            let index = idx[i];
            self.record(region, index, AccessKind::Read);
            if index >= len {
                return Err(HostError::OutOfBounds { region, index, len });
            }
            let key = (region, index);
            if self.entries.contains_key(&key) || block_size == 0 {
                // Hit (or a degenerate zero-size block region, which the
                // batch buffer cannot express): the per-block path.
                let payload = self.load(key)?;
                if !crossed {
                    Self::cross(&mut self.stats, self.crossing);
                    crossed = true;
                }
                out.extend_from_slice(&self.entries[&key].data);
                self.stats.reads += 1;
                self.stats.bytes_read += payload as u64;
                i += 1;
                continue;
            }
            // Miss: extend the run while the request keeps asking for the
            // next consecutive block and it is uncached and in bounds.
            // (Cached blocks stop the run — they may hold dirty data the
            // inner substrate has not seen.)
            let mut run = 1;
            while i + run < idx.len()
                && idx[i + run] == index + run as u64
                && idx[i + run] < len
                && !self.entries.contains_key(&(region, idx[i + run]))
            {
                run += 1;
            }
            match self.inner.read_blocks(region, index, run, &mut fetched) {
                Ok(()) => {
                    for (j, chunk) in fetched.chunks_exact(block_size).enumerate() {
                        let j_index = index + j as u64;
                        if j > 0 {
                            self.record(region, j_index, AccessKind::Read);
                        }
                        self.cache_stats.misses += 1;
                        self.install((region, j_index), chunk.to_vec(), false)?;
                        if !crossed {
                            Self::cross(&mut self.stats, self.crossing);
                            crossed = true;
                        }
                        out.extend_from_slice(chunk);
                        self.stats.reads += 1;
                        self.stats.bytes_read += block_size as u64;
                    }
                    i += run;
                }
                Err(_) => {
                    // The run contains a failing block. Replay the WHOLE
                    // run per block (not just the first index, which would
                    // rebuild ever-shorter doomed batches): blocks before
                    // the failure load and cache exactly as the unbatched
                    // path would, and the failing index surfaces its own
                    // error with its trace event already recorded.
                    for j in 0..run {
                        let j_index = index + j as u64;
                        if j > 0 {
                            self.record(region, j_index, AccessKind::Read);
                        }
                        let payload = self.load((region, j_index))?;
                        if !crossed {
                            Self::cross(&mut self.stats, self.crossing);
                            crossed = true;
                        }
                        out.extend_from_slice(&self.entries[&(region, j_index)].data);
                        self.stats.reads += 1;
                        self.stats.bytes_read += payload as u64;
                    }
                    i += run;
                }
            }
        }
        Ok(())
    }

    /// Shared body of the batched writes: install each chunk dirty, one
    /// logical crossing.
    fn write_scatter(
        &mut self,
        region: RegionId,
        len: u64,
        indices: impl Iterator<Item = u64>,
        data: &[u8],
        block_size: usize,
    ) -> Result<(), HostError> {
        let idx: Vec<u64> = indices.collect();
        // As in `read_gather`: drain the needed capacity in one coalesced
        // write-back wave before the per-block installs.
        let incoming = self.incoming(region, len, &idx);
        self.reserve(incoming)?;
        let mut crossed = false;
        for (index, chunk) in idx.iter().copied().zip(data.chunks_exact(block_size)) {
            self.record(region, index, AccessKind::Write);
            if index >= len {
                return Err(HostError::OutOfBounds { region, index, len });
            }
            self.install((region, index), chunk.to_vec(), true)?;
            if !crossed {
                Self::cross(&mut self.stats, self.crossing);
                crossed = true;
            }
            self.stats.writes += 1;
            self.stats.bytes_written += block_size as u64;
        }
        Ok(())
    }

    /// Flushes every dirty block (region/index order, consecutive runs
    /// coalesced into one batched inner write each) without syncing inner.
    /// `only` restricts the flush to one region (the `sync_region` path).
    fn flush_dirty(&mut self, only: Option<RegionId>) -> Result<(), HostError> {
        let mut dirty: Vec<(RegionId, u64)> = self
            .entries
            .iter()
            .filter(|(k, e)| e.dirty && only.is_none_or(|r| k.0 == r))
            .map(|(k, _)| *k)
            .collect();
        dirty.sort_unstable();
        let mut i = 0;
        while i < dirty.len() {
            let (region, start) = dirty[i];
            let mut run = 1;
            while i + run < dirty.len()
                && dirty[i + run].0 == region
                && dirty[i + run].1 == start + run as u64
            {
                run += 1;
            }
            let mut buf = Vec::new();
            for k in &dirty[i..i + run] {
                buf.extend_from_slice(&self.entries[k].data);
            }
            self.inner.write_blocks(region, start, &buf)?;
            for k in &dirty[i..i + run] {
                self.entries.get_mut(k).expect("dirty key cached").dirty = false;
                self.cache_stats.flushed += 1;
            }
            i += run;
        }
        Ok(())
    }
}

impl<M: EnclaveMemory> EnclaveMemory for CachedMemory<M> {
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> Result<RegionId, HostError> {
        self.inner.alloc_region(blocks, block_size)
    }

    fn free_region(&mut self, region: RegionId) -> Result<(), HostError> {
        // Cached copies (dirty or clean) die with the region.
        let keys: Vec<(RegionId, u64)> =
            self.entries.keys().filter(|(r, _)| *r == region).copied().collect();
        for key in keys {
            let e = self.entries.remove(&key).expect("key just listed");
            self.lru.remove(&e.tick);
        }
        self.inner.free_region(region)
    }

    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        self.inner.grow_region(region, new_blocks)
    }

    fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        self.inner.region_len(region)
    }

    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        self.inner.region_block_size(region)
    }

    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        self.record(region, index, AccessKind::Read);
        let len = self.inner.region_len(region)?;
        if index >= len {
            return Err(HostError::OutOfBounds { region, index, len });
        }
        let key = (region, index);
        let payload = self.load(key)?;
        Self::cross(&mut self.stats, self.crossing);
        self.stats.reads += 1;
        self.stats.bytes_read += payload as u64;
        Ok(&self.entries[&key].data)
    }

    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        self.record(region, index, AccessKind::Write);
        let expected = self.inner.region_block_size(region)?;
        if data.len() != expected {
            return Err(HostError::BlockSizeMismatch { region, expected, got: data.len() });
        }
        let len = self.inner.region_len(region)?;
        if index >= len {
            return Err(HostError::OutOfBounds { region, index, len });
        }
        self.install((region, index), data.to_vec(), true)?;
        Self::cross(&mut self.stats, self.crossing);
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn read_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        // Clear before the region check too: Host never leaves stale
        // bytes in the caller's buffer, even on UnknownRegion.
        out.clear();
        let len = self.inner.region_len(region)?;
        self.read_gather(region, len, start..start + count as u64, out)
    }

    fn read_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        out.clear();
        let len = self.inner.region_len(region)?;
        self.read_gather(region, len, indices.iter().copied(), out)
    }

    fn write_blocks(&mut self, region: RegionId, start: u64, data: &[u8]) -> Result<(), HostError> {
        let block_size = self.inner.region_block_size(region)?;
        let count = batch_count(region, block_size, data.len())? as u64;
        let len = self.inner.region_len(region)?;
        self.write_scatter(region, len, start..start + count, data, block_size)
    }

    fn write_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        data: &[u8],
    ) -> Result<(), HostError> {
        let block_size = self.inner.region_block_size(region)?;
        if batch_count(region, block_size, data.len())? != indices.len() {
            return Err(HostError::BlockSizeMismatch {
                region,
                expected: indices.len() * block_size,
                got: data.len(),
            });
        }
        let len = self.inner.region_len(region)?;
        self.write_scatter(region, len, indices.iter().copied(), data, block_size)
    }

    fn start_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    fn take_trace(&mut self) -> Trace {
        Trace(self.trace.take().unwrap_or_default())
    }

    fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    fn stats(&self) -> HostStats {
        self.stats
    }

    /// Zeroes both the logical [`HostStats`] and the [`CacheStats`]; the
    /// configured crossing cost is preserved. The inner substrate's stats
    /// are its own (`inner_mut().reset_stats()`).
    fn reset_stats(&mut self) {
        self.stats = HostStats::default();
        self.cache_stats = CacheStats::default();
    }

    fn retains_payloads(&self) -> bool {
        self.inner.retains_payloads()
    }

    fn sync(&mut self) -> Result<(), HostError> {
        self.flush_dirty(None)?;
        self.inner.sync()
    }

    /// Writes back just this region's dirty blocks (coalesced runs), then
    /// region-syncs the inner substrate — the WAL's durable-append path
    /// pays one region flush, not a whole-cache flush.
    fn sync_region(&mut self, region: RegionId) -> Result<(), HostError> {
        self.flush_dirty(Some(region))?;
        self.inner.sync_region(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_enclave::Host;

    #[test]
    fn hits_avoid_inner_traffic() {
        let mut m = CachedMemory::new(Host::new(), 8);
        let r = m.alloc_region(4, 4).unwrap();
        m.write(r, 0, &[1; 4]).unwrap();
        for _ in 0..5 {
            assert_eq!(m.read(r, 0).unwrap(), &[1; 4]);
        }
        assert_eq!(m.inner().stats().total_accesses(), 0, "write-back + hits: inner untouched");
        assert_eq!(m.cache_stats().hits, 5);
        assert_eq!(m.stats().reads, 5, "logical stats still count every read");
    }

    #[test]
    fn eviction_writes_back_dirty_blocks() {
        let mut m = CachedMemory::new(Host::new(), 2);
        let r = m.alloc_region(8, 4).unwrap();
        m.write(r, 0, &[0; 4]).unwrap();
        m.write(r, 1, &[1; 4]).unwrap();
        m.write(r, 2, &[2; 4]).unwrap(); // evicts block 0 → inner
        let cs = m.cache_stats();
        assert_eq!((cs.evictions, cs.writebacks), (1, 1));
        assert_eq!(m.inner().stats().writes, 1);
        // Re-reading block 0 misses and fetches the written-back copy.
        assert_eq!(m.read(r, 0).unwrap(), &[0; 4]);
        assert_eq!(m.cache_stats().misses, 1);
    }

    #[test]
    fn sync_flushes_dirty_runs_batched() {
        let mut m = CachedMemory::new(Host::new(), 16);
        let r = m.alloc_region(8, 4).unwrap();
        m.write_blocks(r, 2, &[7u8; 12]).unwrap(); // blocks 2,3,4 dirty
        m.write(r, 6, &[9; 4]).unwrap();
        assert_eq!(m.inner().stats().writes, 0);
        m.sync().unwrap();
        let inner = m.inner().stats();
        assert_eq!(inner.writes, 4);
        assert_eq!(inner.crossings, 2, "one run of 3 + one single = two batched writes");
        assert_eq!(m.cache_stats().flushed, 4);
        m.sync().unwrap();
        assert_eq!(m.cache_stats().flushed, 4, "clean blocks are not re-flushed");
    }

    #[test]
    fn eviction_waves_coalesce_dirty_writebacks() {
        // Fill an 8-block cache with sequential dirty blocks, then read a
        // cold range from another region: the 8 evictions must drain as
        // ONE batched inner write (one inner crossing), not eight singles.
        let mut m = CachedMemory::new(Host::new(), 8);
        let r = m.alloc_region(8, 4).unwrap();
        m.write_blocks(r, 0, &[5u8; 32]).unwrap();
        let cold = m.alloc_region(8, 4).unwrap();
        m.inner_mut().write_blocks(cold, 0, &[1u8; 32]).unwrap();
        m.inner_mut().reset_stats();
        let mut out = Vec::new();
        m.read_blocks(cold, 0, 8, &mut out).unwrap();
        assert_eq!(out, vec![1u8; 32]);
        let cs = m.cache_stats();
        assert_eq!((cs.evictions, cs.writebacks), (8, 8));
        let inner = m.inner().stats();
        assert_eq!(inner.writes, 8);
        assert_eq!(inner.crossings, 2, "one coalesced write-back wave + one coalesced fetch");
    }

    #[test]
    fn eviction_wave_splits_nonconsecutive_runs() {
        let mut m = CachedMemory::new(Host::new(), 4);
        let r = m.alloc_region(16, 4).unwrap();
        for i in [0u64, 1, 8, 9] {
            m.write(r, i, &[i as u8; 4]).unwrap();
        }
        let cold = m.alloc_region(4, 4).unwrap();
        m.inner_mut().write_blocks(cold, 0, &[2u8; 16]).unwrap();
        m.inner_mut().reset_stats();
        let mut out = Vec::new();
        m.read_blocks(cold, 0, 4, &mut out).unwrap();
        assert_eq!(out, vec![2u8; 16]);
        let inner = m.inner().stats();
        assert_eq!(inner.writes, 4);
        assert_eq!(
            inner.crossings, 3,
            "dirty runs 0..2 and 8..10 drain as two batched writes, plus one coalesced fetch"
        );
    }

    #[test]
    fn failed_writeback_keeps_entries_cached_and_dirty() {
        let mut m = CachedMemory::new(Host::new(), 2);
        let r = m.alloc_region(2, 4).unwrap();
        m.write(r, 0, &[3; 4]).unwrap();
        // Sabotage: drop the inner region behind the cache's back, so the
        // eventual write-back of (r, 0) must fail.
        m.inner_mut().free_region(r).unwrap();
        let r2 = m.alloc_region(2, 4).unwrap();
        m.write(r2, 0, &[1; 4]).unwrap();
        let err = m.write(r2, 1, &[1; 4]).unwrap_err();
        assert_eq!(err, HostError::UnknownRegion(r));
        // The wave aborted before dropping anything: both victims stay
        // cached, the dirty block keeps its only up-to-date copy.
        assert_eq!(m.cached_blocks(), 2);
        assert_eq!(m.cache_stats().evictions, 0);
    }

    #[test]
    fn trace_and_stats_match_host_exactly() {
        fn drive<M: EnclaveMemory>(m: &mut M) -> (Trace, HostStats, Vec<u8>) {
            let r = m.alloc_region(8, 4).unwrap();
            m.start_trace();
            m.reset_stats();
            let data: Vec<u8> = (0..32).collect();
            m.write_blocks(r, 0, &data).unwrap();
            let mut out = Vec::new();
            m.read_blocks(r, 2, 4, &mut out).unwrap();
            m.write_blocks_at(r, &[7, 0], &data[..8]).unwrap();
            let mut gathered = Vec::new();
            m.read_blocks_at(r, &[7, 1, 0], &mut gathered).unwrap();
            out.extend_from_slice(&gathered);
            out.extend_from_slice(m.read(r, 5).unwrap());
            (m.take_trace(), m.stats(), out)
        }
        let (ht, hs, hb) = drive(&mut Host::new());
        // A tiny cache (forced evictions) must still look identical.
        let (ct, cs, cb) = drive(&mut CachedMemory::new(Host::new(), 2));
        assert_eq!(ht, ct, "logical trace must not betray the cache");
        assert_eq!(hs, cs, "logical stats must not betray the cache");
        assert_eq!(hb, cb, "payloads must round-trip through evictions");
    }

    #[test]
    fn error_contract_matches_host() {
        let mut m = CachedMemory::new(Host::new(), 4);
        let r = m.alloc_region(4, 8).unwrap();
        assert_eq!(m.read(r, 0), Err(HostError::EmptyBlock(r, 0)));
        assert!(matches!(m.write(r, 9, &[0; 8]), Err(HostError::OutOfBounds { .. })));
        assert!(matches!(
            m.write(r, 0, &[0; 7]),
            Err(HostError::BlockSizeMismatch { expected: 8, got: 7, .. })
        ));
        m.free_region(r).unwrap();
        assert_eq!(m.read(r, 0), Err(HostError::UnknownRegion(r)));
    }

    #[test]
    fn free_region_discards_cached_blocks() {
        let mut m = CachedMemory::new(Host::new(), 4);
        let r = m.alloc_region(2, 4).unwrap();
        m.write(r, 0, &[1; 4]).unwrap();
        m.free_region(r).unwrap();
        assert_eq!(m.cached_blocks(), 0);
        // A new region may reuse block addresses; stale data must be gone.
        let r2 = m.alloc_region(2, 4).unwrap();
        assert_eq!(m.read(r2, 0), Err(HostError::EmptyBlock(r2, 0)));
    }

    #[test]
    fn batched_misses_coalesce_into_one_inner_fetch() {
        // 16 cold blocks, written straight through to inner so the cache
        // holds nothing: one batched read must cost ONE inner crossing,
        // not sixteen.
        let mut m = CachedMemory::new(Host::new(), 32);
        let r = m.alloc_region(16, 4).unwrap();
        m.write_blocks(r, 0, &[9u8; 64]).unwrap();
        // Fill the cache from another region so every region-r entry is
        // evicted (written back), then sync so the cache holds only clean
        // blocks — the measured read then pays no writeback traffic.
        let spill = m.alloc_region(32, 4).unwrap();
        m.write_blocks(spill, 0, &[0u8; 128]).unwrap();
        assert_eq!(m.cached_blocks(), 32, "region-r entries were evicted");
        m.sync().unwrap();
        m.inner_mut().reset_stats();
        m.reset_stats();

        let mut out = Vec::new();
        m.read_blocks(r, 0, 16, &mut out).unwrap();
        assert_eq!(out, vec![9u8; 64]);
        let cs = m.cache_stats();
        assert_eq!((cs.hits, cs.misses), (0, 16), "all cold");
        assert_eq!(
            m.inner().stats().crossings,
            1,
            "16 consecutive misses coalesce into one batched inner read"
        );
        assert_eq!(m.inner().stats().reads, 16);
        assert_eq!(m.stats().crossings, 1, "wrapper still reports one logical crossing");

        // A cached block mid-range splits the run — it may hold dirty
        // data the inner substrate has not seen, and must be served from
        // the cache, never refetched.
        let mut m2 = CachedMemory::new(Host::new(), 16);
        let r2 = m2.alloc_region(8, 4).unwrap();
        // Seed inner directly (substrate-level population the cache never
        // saw), then dirty block 4 through the wrapper.
        m2.inner_mut().write_blocks(r2, 0, &[1u8; 32]).unwrap();
        m2.write(r2, 4, &[7u8; 4]).unwrap();
        m2.inner_mut().reset_stats();
        let mut out2 = Vec::new();
        m2.read_blocks(r2, 0, 8, &mut out2).unwrap();
        let mut expect = vec![1u8; 32];
        expect[16..20].copy_from_slice(&[7u8; 4]);
        assert_eq!(out2, expect, "the dirty cached block wins over inner");
        let cs2 = m2.cache_stats();
        assert_eq!((cs2.hits, cs2.misses), (1, 7));
        assert_eq!(
            m2.inner().stats().crossings,
            2,
            "runs 0..4 and 5..8 are one coalesced fetch each; the hit splits them"
        );
    }

    #[test]
    fn coalesced_misses_keep_host_error_contract() {
        // Blocks 0..2 written, 2 empty, 3 written: a batched read of 0..4
        // must fail with EmptyBlock(2) after successfully tracing 0,1,2 —
        // exactly as Host would.
        fn drive<M: EnclaveMemory>(m: &mut M) -> (Trace, Result<(), HostError>) {
            let r = m.alloc_region(4, 2).unwrap();
            m.write_blocks(r, 0, &[1, 1, 2, 2]).unwrap();
            m.write(r, 3, &[3, 3]).unwrap();
            m.start_trace();
            let mut out = Vec::new();
            let res = m.read_blocks(r, 0, 4, &mut out).map(|_| ());
            (m.take_trace(), res)
        }
        let (ht, hr) = drive(&mut Host::new());
        let mut cached = CachedMemory::new(Host::new(), 8);
        // Push the written blocks down to inner and clear the cache so the
        // miss path (and its fallback) is what gets exercised.
        let (ct, cr) = {
            let r = cached.alloc_region(4, 2).unwrap();
            cached.write_blocks(r, 0, &[1, 1, 2, 2]).unwrap();
            cached.write(r, 3, &[3, 3]).unwrap();
            cached.sync().unwrap();
            let spill = cached.alloc_region(8, 2).unwrap();
            cached.write_blocks(spill, 0, &[0u8; 16]).unwrap();
            cached.start_trace();
            let mut out = Vec::new();
            let res = cached.read_blocks(r, 0, 4, &mut out).map(|_| ());
            (cached.take_trace(), res)
        };
        assert_eq!(hr, cr, "same error, same identity");
        assert_eq!(ht, ct, "same per-block trace up to and including the failure");
    }

    #[test]
    fn batch_larger_than_capacity_completes() {
        let mut m = CachedMemory::new(Host::new(), 2);
        let r = m.alloc_region(16, 4).unwrap();
        let data = vec![3u8; 64];
        m.write_blocks(r, 0, &data).unwrap();
        m.sync().unwrap();
        let mut out = Vec::new();
        m.read_blocks(r, 0, 16, &mut out).unwrap();
        assert_eq!(out, data);
        assert!(m.cache_stats().evictions > 0);
    }
}
