//! A minimal `key=value` configuration-file front-end for substrate
//! selection, reusing the [`SubstrateSpec`] string parser.
//!
//! ```text
//! # deployment.conf — lines are `key = value`; `#` starts a comment
//! substrate = cached:512:disk:/data/oblidb
//! crossing_cost = 8000
//! threads = 4
//! ```
//!
//! Recognized keys:
//!
//! * `substrate` — a [`SubstrateSpec`] string (`host`, `disk:/path`,
//!   `cached:512:disk:/path`, `sharded:4:host`, ...).
//! * `crossing_cost` — simulated SGX transition cost in spin iterations,
//!   applied via `AnySubstrate::set_crossing_cost`.
//! * `threads` — worker count for parallel execution (a positive
//!   integer; `1` = serial), the file-based form of `OBLIDB_THREADS`.
//!
//! Everything else is a typed [`ConfigError`] — configuration typos fail
//! loudly at startup, never silently fall back to defaults.

use std::path::Path;

use crate::{AnySubstrate, ParseSubstrateError, SubstrateSpec};

/// A parsed substrate configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstrateConfig {
    /// The substrate to run over.
    pub spec: SubstrateSpec,
    /// Simulated per-crossing cost (spin iterations), when configured.
    pub crossing_cost: Option<u32>,
    /// Parallel-execution worker count, when configured (`1` = serial).
    pub threads: Option<usize>,
}

impl SubstrateConfig {
    /// Builds the configured substrate and applies the configured
    /// crossing cost.
    pub fn build(&self) -> std::io::Result<AnySubstrate> {
        let mut m = self.spec.build()?;
        if let Some(spins) = self.crossing_cost {
            m.set_crossing_cost(spins);
        }
        Ok(m)
    }
}

/// Why a substrate configuration file was rejected.
#[derive(Debug)]
pub enum ConfigError {
    /// The file could not be read.
    Io(std::io::Error),
    /// A line is not `key = value` (and not blank or a comment).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A key this front-end does not recognize.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The offending key.
        key: String,
    },
    /// The same key appears twice.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The duplicated key.
        key: String,
    },
    /// `substrate = ...` failed the [`SubstrateSpec`] parser.
    BadSubstrate {
        /// 1-based line number.
        line: usize,
        /// The underlying parse error.
        err: ParseSubstrateError,
    },
    /// A numeric value failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The key whose value is bad.
        key: String,
        /// The offending text.
        got: String,
    },
    /// The file never named a substrate.
    MissingSubstrate,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Io(e) => write!(f, "cannot read config file: {e}"),
            ConfigError::Malformed { line, text } => {
                write!(f, "line {line}: expected `key = value`, got '{text}'")
            }
            ConfigError::UnknownKey { line, key } => {
                write!(
                    f,
                    "line {line}: unknown key '{key}' (expected substrate | crossing_cost | \
                     threads)"
                )
            }
            ConfigError::DuplicateKey { line, key } => {
                write!(f, "line {line}: key '{key}' given twice")
            }
            ConfigError::BadSubstrate { line, err } => write!(f, "line {line}: substrate: {err}"),
            ConfigError::BadNumber { line, key, got } => {
                write!(f, "line {line}: {key}: invalid number '{got}'")
            }
            ConfigError::MissingSubstrate => write!(f, "config file never sets `substrate`"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Io(e) => Some(e),
            ConfigError::BadSubstrate { err, .. } => Some(err),
            _ => None,
        }
    }
}

impl SubstrateSpec {
    /// Parses a `key = value` configuration file (see the [module
    /// docs](crate::config)) into a [`SubstrateConfig`].
    pub fn from_config_file(path: impl AsRef<Path>) -> Result<SubstrateConfig, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(ConfigError::Io)?;
        Self::from_config_str(&text)
    }

    /// [`SubstrateSpec::from_config_file`] over in-memory text (testable
    /// without touching the filesystem).
    pub fn from_config_str(text: &str) -> Result<SubstrateConfig, ConfigError> {
        let mut spec: Option<SubstrateSpec> = None;
        let mut crossing_cost: Option<u32> = None;
        let mut threads: Option<usize> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let Some((key, value)) = content.split_once('=') else {
                return Err(ConfigError::Malformed { line, text: content.to_string() });
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "substrate" => {
                    if spec.is_some() {
                        return Err(ConfigError::DuplicateKey { line, key: key.into() });
                    }
                    spec =
                        Some(value.parse().map_err(|err| ConfigError::BadSubstrate { line, err })?);
                }
                "crossing_cost" => {
                    if crossing_cost.is_some() {
                        return Err(ConfigError::DuplicateKey { line, key: key.into() });
                    }
                    crossing_cost = Some(value.parse().map_err(|_| ConfigError::BadNumber {
                        line,
                        key: key.into(),
                        got: value.to_string(),
                    })?);
                }
                "threads" => {
                    if threads.is_some() {
                        return Err(ConfigError::DuplicateKey { line, key: key.into() });
                    }
                    threads = Some(value.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                        ConfigError::BadNumber { line, key: key.into(), got: value.to_string() }
                    })?);
                }
                other => return Err(ConfigError::UnknownKey { line, key: other.into() }),
            }
        }
        Ok(SubstrateConfig {
            spec: spec.ok_or(ConfigError::MissingSubstrate)?,
            crossing_cost,
            threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;

    #[test]
    fn parses_full_config() {
        let cfg = SubstrateSpec::from_config_str(
            "# deployment\nsubstrate = cached:512:disk:/data # hot blocks\ncrossing_cost = 8000\n\
             threads = 4\n",
        )
        .unwrap();
        assert_eq!(
            cfg.spec,
            SubstrateSpec::CachedDisk { dir: Some("/data".into()), capacity_blocks: 512 }
        );
        assert_eq!(cfg.crossing_cost, Some(8000));
        assert_eq!(cfg.threads, Some(4));
    }

    #[test]
    fn crossing_cost_and_threads_are_optional() {
        let cfg = SubstrateSpec::from_config_str("substrate = host\n").unwrap();
        assert_eq!(cfg.spec, SubstrateSpec::Host);
        assert_eq!(cfg.crossing_cost, None);
        assert_eq!(cfg.threads, None);
        cfg.build().unwrap();
    }

    #[test]
    fn threads_must_be_a_positive_integer() {
        assert!(matches!(
            SubstrateSpec::from_config_str("substrate = host\nthreads = many\n"),
            Err(ConfigError::BadNumber { line: 2, .. })
        ));
        assert!(matches!(
            SubstrateSpec::from_config_str("substrate = host\nthreads = 0\n"),
            Err(ConfigError::BadNumber { line: 2, .. })
        ));
        assert!(matches!(
            SubstrateSpec::from_config_str("substrate = host\nthreads = 2\nthreads = 4\n"),
            Err(ConfigError::DuplicateKey { line: 3, .. })
        ));
        // The unknown-key hint advertises the new key.
        let msg = SubstrateSpec::from_config_str("substrate = host\nspindle = 4\n").unwrap_err();
        assert!(msg.to_string().contains("threads"), "{msg}");
    }

    #[test]
    fn errors_are_typed_and_carry_line_numbers() {
        assert!(matches!(
            SubstrateSpec::from_config_str("substrate host\n"),
            Err(ConfigError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            SubstrateSpec::from_config_str("substrate = host\nspindle = 4\n"),
            Err(ConfigError::UnknownKey { line: 2, .. })
        ));
        assert!(matches!(
            SubstrateSpec::from_config_str("substrate = floppy\n"),
            Err(ConfigError::BadSubstrate { line: 1, err: ParseSubstrateError::UnknownKind(_) })
        ));
        assert!(matches!(
            SubstrateSpec::from_config_str("substrate = host\ncrossing_cost = lots\n"),
            Err(ConfigError::BadNumber { line: 2, .. })
        ));
        assert!(matches!(
            SubstrateSpec::from_config_str("substrate = host\nsubstrate = disk\n"),
            Err(ConfigError::DuplicateKey { line: 2, .. })
        ));
        assert!(matches!(
            SubstrateSpec::from_config_str("# nothing\n"),
            Err(ConfigError::MissingSubstrate)
        ));
        // Errors render with their location.
        let msg = SubstrateSpec::from_config_str("substrate = floppy").unwrap_err().to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }

    #[test]
    fn reads_from_file() {
        let dir = TempDir::new("oblidb-config").unwrap();
        let path = dir.path().join("deploy.conf");
        std::fs::write(&path, "substrate = disk\ncrossing_cost = 12\n").unwrap();
        let cfg = SubstrateSpec::from_config_file(&path).unwrap();
        assert_eq!(cfg.spec, SubstrateSpec::Disk { dir: None });
        assert_eq!(cfg.crossing_cost, Some(12));
        assert!(matches!(
            SubstrateSpec::from_config_file(dir.path().join("absent.conf")),
            Err(ConfigError::Io(_))
        ));
    }
}
