//! Disk-backed untrusted memory: one file per region, block-aligned.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use oblidb_enclave::{
    batch_count, AccessEvent, AccessKind, CrossingCost, EnclaveMemory, HostError, HostStats, IoOp,
    RegionId, Trace,
};

use crate::TempDir;

/// The persisted region table: everything [`DiskMemory::open`] needs to
/// re-attach to a populated directory (region ids incl. tombstones, block
/// geometry, written-block bitmaps). Rewritten atomically (temp file +
/// rename) on every [`EnclaveMemory::sync`] / `sync_region`.
pub const REGION_META_FILE: &str = "regions.meta";

const META_MAGIC: &[u8; 8] = b"OBLIDBMT";
const META_VERSION: u32 = 1;

struct DiskRegion {
    file: File,
    path: PathBuf,
    block_size: usize,
    blocks: u64,
    /// One bit per block: whether it was ever written. Mirrors `Host`'s
    /// `Option<Box<[u8]>>` slots so unwritten reads fail with the same
    /// [`HostError::EmptyBlock`]; the file itself is sparse zeros until
    /// first write.
    written: Vec<u64>,
    /// Whether the last successful [`DiskMemory::write_meta`] recorded
    /// this region in the on-disk table. A listed region must leave the
    /// table durably *before* its file is unlinked (see
    /// [`EnclaveMemory::free_region`]); unlisted ones — scratch regions
    /// allocated and freed between syncs — skip straight to the unlink.
    listed: bool,
}

impl DiskRegion {
    fn is_written(&self, index: u64) -> bool {
        self.written[(index / 64) as usize] & (1 << (index % 64)) != 0
    }

    fn mark_written(&mut self, index: u64) {
        self.written[(index / 64) as usize] |= 1 << (index % 64);
    }
}

/// A file-per-region [`EnclaveMemory`] substrate for datasets larger than
/// RAM.
///
/// Layout: each region is one file of `blocks × block_size` bytes at a
/// block-aligned offset (`index × block_size`), grown with `set_len` and
/// deleted on [`EnclaveMemory::free_region`]. Batched calls map to single
/// positioned reads/writes (`pread`/`pwrite`-style), so the engine's
/// `read_blocks`/`write_blocks` path amortizes the syscall as well as the
/// simulated enclave crossing; gather/scatter (`_at`) variants issue one
/// positioned call per block but still count a single crossing.
///
/// Accounting is bit-compatible with [`oblidb_enclave::Host`]: the same
/// trace events in the same order (failed attempts included), the same
/// error precedence, the same [`HostStats`] counting — so every
/// obliviousness test that compares transcripts passes unchanged over
/// disk. Payload durability: [`EnclaveMemory::sync`] fsyncs every region
/// file.
///
/// Construction: [`DiskMemory::create`] uses (and keeps) an explicit
/// directory; [`DiskMemory::temp`] owns a [`TempDir`] that removes itself
/// on drop, so tests and benches leave nothing behind.
pub struct DiskMemory {
    dir: PathBuf,
    regions: Vec<Option<DiskRegion>>,
    trace: Option<Vec<AccessEvent>>,
    stats: HostStats,
    crossing: CrossingCost,
    scratch: Vec<u8>,
    /// Serialized region table, kept in sync incrementally: single-block
    /// writes patch their bitmap word in place, so the steady-state
    /// [`EnclaveMemory::sync_region`] path (the WAL's durable append)
    /// serializes in O(1) instead of re-walking every region.
    meta_buf: Vec<u8>,
    /// Byte offset of each live region's entry inside `meta_buf`, indexed
    /// by region id; `None` for tombstones.
    meta_spans: Vec<Option<usize>>,
    /// Whether `meta_buf`/`meta_spans` reflect the current region table.
    /// Structural changes (alloc/free/grow) clear it; the next
    /// `write_meta` rebuilds once.
    meta_valid: bool,
    /// Present when this substrate owns a self-cleaning directory.
    _guard: Option<TempDir>,
}

impl DiskMemory {
    /// Creates a **fresh** disk substrate rooted at `dir` (created if
    /// missing). Region files persist after drop; re-attach to them later
    /// with [`DiskMemory::open`]. To prevent a second `create` from
    /// silently truncating earlier data, this refuses a directory that
    /// already contains region files or a region table.
    /// [`EnclaveMemory::free_region`] deletes individual region files.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".blk") || name == REGION_META_FILE {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    format!(
                        "{} already holds a DiskMemory store (found {:?}); use \
                         DiskMemory::open to re-attach, or point create at a fresh directory",
                        dir.display(),
                        name
                    ),
                ));
            }
        }
        Ok(DiskMemory {
            dir,
            regions: Vec::new(),
            trace: None,
            stats: HostStats::default(),
            crossing: CrossingCost::default(),
            scratch: Vec::new(),
            meta_buf: Vec::new(),
            meta_spans: Vec::new(),
            meta_valid: false,
            _guard: None,
        })
    }

    /// Re-attaches to a directory a previous `DiskMemory` populated and
    /// synced: reads the persisted region table ([`REGION_META_FILE`]) and
    /// opens every live region file without truncating it. Region ids —
    /// including tombstones of freed regions — resume exactly where the
    /// persisted store left off, so a reopened engine allocates the same
    /// ids (and therefore produces the same traces) as the one that wrote
    /// the store.
    ///
    /// The region table is untrusted state (geometry and bitmaps are
    /// public); integrity of the *contents* is the sealed layer's job. A
    /// missing or structurally invalid table, or a region file whose size
    /// disagrees with it, fails with a descriptive `io::Error` — reopen
    /// never guesses.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        let meta = std::fs::read(dir.join(REGION_META_FILE)).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!(
                    "{}: cannot read region table {REGION_META_FILE} ({e}); only a synced \
                     DiskMemory store can be reopened",
                    dir.display()
                ),
            )
        })?;
        let regions = Self::decode_meta(&dir, &meta)?;
        Ok(DiskMemory {
            dir,
            regions,
            trace: None,
            stats: HostStats::default(),
            crossing: CrossingCost::default(),
            scratch: Vec::new(),
            meta_buf: Vec::new(),
            meta_spans: Vec::new(),
            meta_valid: false,
            _guard: None,
        })
    }

    /// Parses the region table and opens the live region files.
    fn decode_meta(dir: &Path, meta: &[u8]) -> std::io::Result<Vec<Option<DiskRegion>>> {
        let bad = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: corrupt {REGION_META_FILE}: {what}", dir.display()),
            )
        };
        let mut at = 0usize;
        let mut take = |n: usize| -> std::io::Result<&[u8]> {
            let end = at.checked_add(n).filter(|e| *e <= meta.len()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: corrupt {REGION_META_FILE}: truncated", dir.display()),
                )
            })?;
            let s = &meta[at..end];
            at = end;
            Ok(s)
        };
        if take(8)? != META_MAGIC {
            return Err(bad("bad magic"));
        }
        let u32_of = |b: &[u8]| u32::from_le_bytes(b.try_into().expect("u32"));
        let u64_of = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("u64"));
        if u32_of(take(4)?) != META_VERSION {
            return Err(bad("unsupported version"));
        }
        // The table is attacker-controlled input: every count is bounded
        // (and every multiplication checked) before any allocation, so a
        // forged file is a typed InvalidData error — the worst a forged
        // count can extract is a few hundred MB of `None` slots (the same
        // id-space table a legitimately long-lived store holds in RAM;
        // id-space compaction is the real fix and a ROADMAP note), never
        // an unbounded allocation or an overflow that slips a bogus
        // geometry past the size check.
        let next_id = u32_of(take(4)?) as usize;
        let live = u32_of(take(4)?) as usize;
        if next_id > 1 << 22 || live > next_id {
            return Err(bad("implausible region count"));
        }
        let mut regions: Vec<Option<DiskRegion>> = (0..next_id).map(|_| None).collect();
        for _ in 0..live {
            let id = u32_of(take(4)?) as usize;
            let block_size = u64_of(take(8)?) as usize;
            let blocks = u64_of(take(8)?);
            let expect = (block_size as u64)
                .checked_mul(blocks)
                .filter(|_| block_size > 0 && block_size <= 1 << 30)
                .ok_or_else(|| bad("implausible region geometry"))?;
            let words = blocks.div_ceil(64) as usize;
            // Bounded by the input size, so with_capacity cannot be
            // tricked into a huge allocation.
            if words > meta.len() / 8 {
                return Err(bad("truncated written-block bitmap"));
            }
            let mut written = Vec::with_capacity(words);
            for _ in 0..words {
                written.push(u64_of(take(8)?));
            }
            if id >= next_id || regions[id].is_some() {
                return Err(bad("region id out of range or duplicated"));
            }
            let path = dir.join(format!("region-{id:08}.blk"));
            let file = OpenOptions::new().read(true).write(true).open(&path)?;
            let got = file.metadata()?.len();
            if got != expect {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "{}: region file is {got} bytes, region table says {expect} \
                         (blocks={blocks} × block_size={block_size}); the store was \
                         truncated or swapped",
                        path.display()
                    ),
                ));
            }
            regions[id] = Some(DiskRegion { file, path, block_size, blocks, written, listed: true });
        }
        if at != meta.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(regions)
    }

    /// Rebuilds the serialized region table from scratch — O(regions) —
    /// and records each entry's byte offset so later single-block writes
    /// can patch their bitmap word in place.
    fn rebuild_meta(&mut self) {
        let buf = &mut self.meta_buf;
        buf.clear();
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&META_VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.regions.len() as u32).to_le_bytes());
        let live = self.regions.iter().filter(|r| r.is_some()).count() as u32;
        buf.extend_from_slice(&live.to_le_bytes());
        self.meta_spans.clear();
        self.meta_spans.resize(self.regions.len(), None);
        for (id, r) in self.regions.iter().enumerate() {
            let Some(r) = r else { continue };
            self.meta_spans[id] = Some(buf.len());
            buf.extend_from_slice(&(id as u32).to_le_bytes());
            buf.extend_from_slice(&(r.block_size as u64).to_le_bytes());
            buf.extend_from_slice(&r.blocks.to_le_bytes());
            for word in &r.written {
                buf.extend_from_slice(&word.to_le_bytes());
            }
        }
        self.meta_valid = true;
    }

    /// Serializes the region table and writes it atomically (temp file +
    /// rename), so a crash mid-write leaves the previous table intact.
    /// Serialization is incremental: when no structural change happened
    /// since the last call, the cached buffer (bitmap words already
    /// patched by the write path) is reused as-is, so the steady-state
    /// `write → sync_region` loop pays O(1) serialization per call.
    fn write_meta(&mut self) -> Result<(), HostError> {
        if !self.meta_valid {
            self.rebuild_meta();
        }
        let ioe = |e: &std::io::Error| HostError::io(e, None, IoOp::Sync);
        let tmp = self.dir.join(format!(".{REGION_META_FILE}.tmp"));
        let write = (|| {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.meta_buf)?;
            f.sync_data()?;
            std::fs::rename(&tmp, self.dir.join(REGION_META_FILE))?;
            // The rename is only durable once the directory entry is.
            File::open(&self.dir)?.sync_all()
        })();
        write.map_err(|e| ioe(&e))?;
        for r in self.regions.iter_mut().flatten() {
            r.listed = true;
        }
        Ok(())
    }

    /// Mirrors one region's written-bitmap word for `index` into the
    /// cached serialized table, keeping it rebuild-free after block
    /// writes. Entry layout: id(4) ‖ block_size(8) ‖ blocks(8) ‖ bitmap.
    fn patch_meta_word(
        meta_buf: &mut [u8],
        meta_spans: &[Option<usize>],
        meta_valid: bool,
        region: RegionId,
        r: &DiskRegion,
        index: u64,
    ) {
        if !meta_valid {
            return;
        }
        if let Some(off) = meta_spans.get(region.0 as usize).copied().flatten() {
            let word = (index / 64) as usize;
            let at = off + 20 + 8 * word;
            meta_buf[at..at + 8].copy_from_slice(&r.written[word].to_le_bytes());
        }
    }

    /// Opens a disk substrate over a fresh self-cleaning [`TempDir`]: the
    /// directory and every region file are removed when the substrate is
    /// dropped.
    pub fn temp() -> std::io::Result<Self> {
        let guard = TempDir::new("oblidb-disk")?;
        let mut m = Self::create(guard.path())?;
        m._guard = Some(guard);
        Ok(m)
    }

    /// The directory holding the region files.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Total region slots ever allocated (live regions plus tombstones of
    /// freed ones) — the id-space size a reattaching wrapper needs.
    pub fn region_slots(&self) -> usize {
        self.regions.len()
    }

    /// Sets the simulated per-crossing cost, exactly as
    /// [`Host::set_crossing_cost`](oblidb_enclave::Host::set_crossing_cost):
    /// every boundary transition additionally executes `spins` spin-loop
    /// iterations. Disk already pays real I/O latency; the spin models the
    /// SGX transition on top, so Host/disk/cached costs calibrate on the
    /// same axis. Preserved across [`EnclaveMemory::reset_stats`].
    pub fn set_crossing_cost(&mut self, spins: u32) {
        self.crossing.spins = spins;
    }

    /// Sets the simulated per-crossing *stall*, exactly as
    /// [`Host::set_crossing_stall`](oblidb_enclave::Host::set_crossing_stall):
    /// every boundary transition additionally sleeps for `nanos`
    /// nanoseconds, modelling OCALL service time the worker spends
    /// blocked rather than computing. Preserved across
    /// [`EnclaveMemory::reset_stats`].
    pub fn set_crossing_stall(&mut self, nanos: u64) {
        self.crossing.stall_nanos = nanos;
    }

    fn cross(stats: &mut HostStats, cost: CrossingCost) {
        stats.crossings += 1;
        stats.stall_nanos += cost.stall_nanos;
        cost.pay();
    }

    fn region(&self, region: RegionId) -> Result<&DiskRegion, HostError> {
        self.regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))
    }

    fn region_mut(&mut self, region: RegionId) -> Result<&mut DiskRegion, HostError> {
        self.regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))
    }

    fn record(&mut self, region: RegionId, index: u64, kind: AccessKind) {
        if let Some(t) = &mut self.trace {
            t.push(AccessEvent { region, index, kind });
        }
    }
}

impl EnclaveMemory for DiskMemory {
    /// A failure to create or size the region file — ENOSPC, lost
    /// permissions — surfaces as [`HostError::Io`] with
    /// [`IoOp::Alloc`] context; nothing panics and no half-created
    /// region is registered.
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> Result<RegionId, HostError> {
        let id = RegionId(self.regions.len() as u32);
        let ioe = |e: &std::io::Error| HostError::io(e, Some(id), IoOp::Alloc);
        let path = self.dir.join(format!("region-{:08}.blk", id.0));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| ioe(&e))?;
        if let Err(e) = file.set_len((blocks * block_size) as u64) {
            // Don't leave a zero-length orphan behind a failed allocation.
            let _ = std::fs::remove_file(&path);
            return Err(ioe(&e));
        }
        self.regions.push(Some(DiskRegion {
            file,
            path,
            block_size,
            blocks: blocks as u64,
            written: vec![0; (blocks as u64).div_ceil(64) as usize],
            listed: false,
        }));
        self.meta_valid = false;
        Ok(id)
    }

    /// A region recorded in the on-disk table leaves it durably *before*
    /// its file is unlinked: a crash (or a caller that never syncs again)
    /// between the two steps then leaves an orphaned file — a leak —
    /// never a table entry pointing at a missing file, which would make
    /// the store unopenable. Unlisted regions (scratch allocated and
    /// freed between syncs) skip the table rewrite, so hot paths pay
    /// nothing and the persisted id-space only advances at sync points.
    fn free_region(&mut self, region: RegionId) -> Result<(), HostError> {
        let Some(r) = self.regions.get_mut(region.0 as usize).and_then(Option::take) else {
            return Ok(());
        };
        self.meta_valid = false;
        if r.listed {
            if let Err(e) = self.write_meta() {
                self.regions[region.0 as usize] = Some(r);
                self.meta_valid = false;
                return Err(e);
            }
        }
        match std::fs::remove_file(&r.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => {
                // Unlink failed: re-attach the region (its data still
                // exists); the next sync re-lists it in the table.
                let err = HostError::io(&e, Some(region), IoOp::Free);
                self.regions[region.0 as usize] = Some(r);
                self.meta_valid = false;
                Err(err)
            }
        }
    }

    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        let r = self.region_mut(region)?;
        if (new_blocks as u64) > r.blocks {
            r.file
                .set_len((new_blocks * r.block_size) as u64)
                .map_err(|e| HostError::io(&e, Some(region), IoOp::Grow))?;
            r.blocks = new_blocks as u64;
            r.written.resize(r.blocks.div_ceil(64) as usize, 0);
            self.meta_valid = false;
        }
        Ok(())
    }

    fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        Ok(self.region(region)?.blocks)
    }

    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        Ok(self.region(region)?.block_size)
    }

    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        self.record(region, index, AccessKind::Read);
        let cost = self.crossing;
        let DiskMemory { regions, stats, scratch, .. } = self;
        let r = regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))?;
        if index >= r.blocks {
            return Err(HostError::OutOfBounds { region, index, len: r.blocks });
        }
        if !r.is_written(index) {
            // The attempt is traced (above); counters stay untouched, as
            // on `Host`.
            return Err(HostError::EmptyBlock(region, index));
        }
        scratch.resize(r.block_size, 0);
        r.file
            .read_exact_at(scratch, index * r.block_size as u64)
            .map_err(|e| HostError::io(&e, Some(region), IoOp::Read))?;
        Self::cross(stats, cost);
        stats.reads += 1;
        stats.bytes_read += r.block_size as u64;
        Ok(&self.scratch[..])
    }

    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        self.record(region, index, AccessKind::Write);
        let cost = self.crossing;
        let DiskMemory { regions, stats, meta_buf, meta_spans, meta_valid, .. } = self;
        let r = regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))?;
        if data.len() != r.block_size {
            return Err(HostError::BlockSizeMismatch {
                region,
                expected: r.block_size,
                got: data.len(),
            });
        }
        if index >= r.blocks {
            return Err(HostError::OutOfBounds { region, index, len: r.blocks });
        }
        r.file
            .write_all_at(data, index * r.block_size as u64)
            .map_err(|e| HostError::io(&e, Some(region), IoOp::Write))?;
        r.mark_written(index);
        Self::patch_meta_word(meta_buf, meta_spans, *meta_valid, region, r, index);
        Self::cross(stats, cost);
        stats.writes += 1;
        stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn read_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        out.clear();
        let cost = self.crossing;
        let DiskMemory { regions, trace, stats, .. } = self;
        let r = regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))?;
        // Pass 1: trace and validate per block (through the failing block,
        // as Host does), without touching the counters yet.
        let mut failure = None;
        for index in start..start + count as u64 {
            if let Some(t) = trace {
                t.push(AccessEvent { region, index, kind: AccessKind::Read });
            }
            if index >= r.blocks {
                failure = Some(HostError::OutOfBounds { region, index, len: r.blocks });
            } else if !r.is_written(index) {
                failure = Some(HostError::EmptyBlock(region, index));
            }
            if failure.is_some() {
                break;
            }
        }
        // Pass 2: one positioned read of the valid run (the whole batch,
        // or the prefix before a failure — Host also surfaces the prefix),
        // with stats counted only for blocks actually transferred.
        let valid = match failure {
            None => count,
            Some(HostError::OutOfBounds { index, .. }) | Some(HostError::EmptyBlock(_, index)) => {
                (index - start) as usize
            }
            Some(_) => 0,
        };
        if valid > 0 {
            out.resize(valid * r.block_size, 0);
            r.file
                .read_exact_at(out, start * r.block_size as u64)
                .map_err(|e| HostError::io(&e, Some(region), IoOp::Read))?;
            Self::cross(stats, cost);
            stats.reads += valid as u64;
            stats.bytes_read += (valid * r.block_size) as u64;
        }
        match failure {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn read_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        out.clear();
        let cost = self.crossing;
        let mut crossed = false;
        let DiskMemory { regions, trace, stats, .. } = self;
        let r = regions
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or(HostError::UnknownRegion(region))?;
        for &index in indices {
            if let Some(t) = trace {
                t.push(AccessEvent { region, index, kind: AccessKind::Read });
            }
            if index >= r.blocks {
                return Err(HostError::OutOfBounds { region, index, len: r.blocks });
            }
            if !r.is_written(index) {
                return Err(HostError::EmptyBlock(region, index));
            }
            if !crossed {
                Self::cross(stats, cost);
                crossed = true;
            }
            let at = out.len();
            out.resize(at + r.block_size, 0);
            r.file
                .read_exact_at(&mut out[at..], index * r.block_size as u64)
                .map_err(|e| HostError::io(&e, Some(region), IoOp::Read))?;
            stats.reads += 1;
            stats.bytes_read += r.block_size as u64;
        }
        Ok(())
    }

    fn write_blocks(&mut self, region: RegionId, start: u64, data: &[u8]) -> Result<(), HostError> {
        let cost = self.crossing;
        let block_size = self.region_block_size(region)?;
        let count = batch_count(region, block_size, data.len())? as u64;
        let DiskMemory { regions, trace, stats, meta_buf, meta_spans, meta_valid, .. } = self;
        let r = regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))?;
        // Pass 1: trace per block through the first failure, as Host does,
        // without touching the counters yet.
        let mut failure = None;
        for index in start..start + count {
            if let Some(t) = trace {
                t.push(AccessEvent { region, index, kind: AccessKind::Write });
            }
            if index >= r.blocks {
                failure = Some(HostError::OutOfBounds { region, index, len: r.blocks });
                break;
            }
        }
        // Pass 2: one positioned write of the in-bounds run (Host also
        // writes the prefix before surfacing an out-of-bounds tail), with
        // stats counted only after the data actually reached the file.
        let valid = match failure {
            None => count,
            Some(HostError::OutOfBounds { index, .. }) => index - start,
            Some(_) => 0,
        } as usize;
        if valid > 0 {
            r.file
                .write_all_at(&data[..valid * block_size], start * block_size as u64)
                .map_err(|e| HostError::io(&e, Some(region), IoOp::Write))?;
            for index in start..start + valid as u64 {
                r.mark_written(index);
            }
            // Patch each touched bitmap word once, not once per block.
            for word in (start / 64)..=((start + valid as u64 - 1) / 64) {
                Self::patch_meta_word(meta_buf, meta_spans, *meta_valid, region, r, word * 64);
            }
            Self::cross(stats, cost);
            stats.writes += valid as u64;
            stats.bytes_written += (valid * block_size) as u64;
        }
        match failure {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn write_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        data: &[u8],
    ) -> Result<(), HostError> {
        let cost = self.crossing;
        let block_size = self.region_block_size(region)?;
        if batch_count(region, block_size, data.len())? != indices.len() {
            return Err(HostError::BlockSizeMismatch {
                region,
                expected: indices.len() * block_size,
                got: data.len(),
            });
        }
        let mut crossed = false;
        let DiskMemory { regions, trace, stats, meta_buf, meta_spans, meta_valid, .. } = self;
        let r = regions
            .get_mut(region.0 as usize)
            .and_then(|r| r.as_mut())
            .ok_or(HostError::UnknownRegion(region))?;
        for (&index, chunk) in indices.iter().zip(data.chunks_exact(block_size)) {
            if let Some(t) = trace {
                t.push(AccessEvent { region, index, kind: AccessKind::Write });
            }
            if index >= r.blocks {
                return Err(HostError::OutOfBounds { region, index, len: r.blocks });
            }
            r.file
                .write_all_at(chunk, index * block_size as u64)
                .map_err(|e| HostError::io(&e, Some(region), IoOp::Write))?;
            r.mark_written(index);
            Self::patch_meta_word(meta_buf, meta_spans, *meta_valid, region, r, index);
            if !crossed {
                Self::cross(stats, cost);
                crossed = true;
            }
            stats.writes += 1;
            stats.bytes_written += block_size as u64;
        }
        Ok(())
    }

    fn start_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    fn take_trace(&mut self) -> Trace {
        Trace(self.trace.take().unwrap_or_default())
    }

    fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    fn stats(&self) -> HostStats {
        self.stats
    }

    /// Zeroes the aggregate counters; the configured crossing cost is
    /// preserved, as on [`oblidb_enclave::Host`].
    fn reset_stats(&mut self) {
        self.stats = HostStats::default();
    }

    fn sync(&mut self) -> Result<(), HostError> {
        for (id, r) in self.regions.iter().enumerate() {
            let Some(r) = r else { continue };
            r.file
                .sync_data()
                .map_err(|e| HostError::io(&e, Some(RegionId(id as u32)), IoOp::Sync))?;
        }
        self.write_meta()
    }

    /// Fsyncs one region's *data* file (instead of every file, as `sync`
    /// does) and refreshes the persisted region table — the
    /// durable-append primitive the WAL uses. The table's written-block
    /// bitmaps must be durable for the WAL tail scan to see the appended
    /// slot, but serializing them no longer walks every region: block
    /// writes patch the cached buffer in place, so in the steady state
    /// (no alloc/free/grow since the last sync) this serializes in O(1)
    /// and only rebuilds after a structural change.
    fn sync_region(&mut self, region: RegionId) -> Result<(), HostError> {
        let r = self.region(region)?;
        r.file.sync_data().map_err(|e| HostError::io(&e, Some(region), IoOp::Sync))?;
        self.write_meta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_enclave::Host;

    /// Drives the same mixed workload over any substrate and returns the
    /// observable outcome (payloads, trace, stats).
    fn drive<M: EnclaveMemory>(m: &mut M) -> (Vec<Vec<u8>>, Trace, HostStats) {
        let r = m.alloc_region(8, 4).unwrap();
        m.start_trace();
        m.reset_stats();
        for i in 0..8u64 {
            m.write(r, i, &[i as u8; 4]).unwrap();
        }
        m.grow_region(r, 12).unwrap();
        let data: Vec<u8> = (0..16).collect();
        m.write_blocks(r, 8, &data).unwrap();
        m.write_blocks_at(r, &[0, 11, 3], &data[..12]).unwrap();
        let mut out = Vec::new();
        m.read_blocks(r, 0, 12, &mut out).unwrap();
        let mut gathered = Vec::new();
        m.read_blocks_at(r, &[11, 0, 5], &mut gathered).unwrap();
        let single = m.read(r, 7).unwrap().to_vec();
        (vec![out, gathered, single], m.take_trace(), m.stats())
    }

    #[test]
    fn matches_host_bit_for_bit() {
        let (host_out, host_trace, host_stats) = drive(&mut Host::new());
        let mut disk = DiskMemory::temp().unwrap();
        let (disk_out, disk_trace, disk_stats) = drive(&mut disk);
        assert_eq!(host_out, disk_out, "payload bytes must round-trip identically");
        assert_eq!(host_trace, disk_trace, "traces must be identical");
        assert_eq!(host_stats, disk_stats, "stats must be identical");
    }

    #[test]
    fn error_contract_matches_host() {
        let mut m = DiskMemory::temp().unwrap();
        let r = m.alloc_region(4, 8).unwrap();
        assert_eq!(m.read(r, 0), Err(HostError::EmptyBlock(r, 0)));
        assert!(matches!(m.write(r, 9, &[0; 8]), Err(HostError::OutOfBounds { .. })));
        assert!(matches!(
            m.write(r, 0, &[0; 7]),
            Err(HostError::BlockSizeMismatch { expected: 8, got: 7, .. })
        ));
        let mut out = Vec::new();
        m.write_blocks(r, 0, &[1u8; 16]).unwrap();
        assert_eq!(m.read_blocks(r, 0, 4, &mut out), Err(HostError::EmptyBlock(r, 2)));
        // Host surfaces the valid prefix on a mid-batch failure; so must
        // disk (stats for exactly those two blocks were counted above).
        assert_eq!(out, vec![1u8; 16], "failed batch read yields the valid prefix");
        m.free_region(r).unwrap();
        assert_eq!(m.read(r, 0), Err(HostError::UnknownRegion(r)));
    }

    #[test]
    fn free_region_removes_file_and_temp_cleans_dir() {
        let mut m = DiskMemory::temp().unwrap();
        let dir = m.dir().to_path_buf();
        let r = m.alloc_region(2, 4).unwrap();
        m.write(r, 0, &[1; 4]).unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // Never synced, so the region was never listed: free is a bare
        // unlink, no region-table write.
        m.free_region(r).unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _r2 = m.alloc_region(2, 4).unwrap();
        drop(m);
        assert!(!dir.exists(), "temp substrate must remove its directory");
    }

    #[test]
    fn freeing_a_listed_region_keeps_the_store_openable() {
        // A region the persisted table records must leave it durably when
        // freed — otherwise a reopen chases the deleted file. No sync
        // happens after the free: the free itself must write the table.
        let guard = TempDir::new("oblidb-disk-freelisted").unwrap();
        let sub = guard.path().join("store");
        let (keep, gone) = {
            let mut m = DiskMemory::create(&sub).unwrap();
            let keep = m.alloc_region(2, 4).unwrap();
            let gone = m.alloc_region(2, 4).unwrap();
            m.write(keep, 0, &[1; 4]).unwrap();
            m.write(gone, 0, &[2; 4]).unwrap();
            m.sync().unwrap(); // both regions land in the on-disk table
            m.free_region(gone).unwrap();
            (keep, gone)
        };
        let mut back = DiskMemory::open(&sub).unwrap();
        assert_eq!(back.read(keep, 0).unwrap(), &[1; 4]);
        assert_eq!(back.read(gone, 0), Err(HostError::UnknownRegion(gone)));
        // The tombstone still occupies its id: allocation resumes past it.
        assert_eq!(back.alloc_region(1, 4).unwrap(), RegionId(2));
    }

    #[test]
    fn explicit_dir_persists_files() {
        let guard = TempDir::new("oblidb-disk-explicit").unwrap();
        let sub = guard.path().join("store");
        {
            let mut m = DiskMemory::create(&sub).unwrap();
            let r = m.alloc_region(2, 4).unwrap();
            m.write(r, 1, &[9; 4]).unwrap();
            m.sync().unwrap();
        }
        // Dropping an explicit-dir substrate keeps the region file plus
        // the persisted region table.
        assert_eq!(std::fs::read_dir(&sub).unwrap().count(), 2);
        assert!(sub.join(REGION_META_FILE).exists());
        let bytes = std::fs::read(sub.join("region-00000000.blk")).unwrap();
        assert_eq!(&bytes[4..8], &[9; 4], "block 1 lives at a block-aligned offset");
    }

    #[test]
    fn open_reattaches_with_identical_ids_and_contract() {
        let guard = TempDir::new("oblidb-disk-open").unwrap();
        let store = guard.path().join("db");
        {
            let mut m = DiskMemory::create(&store).unwrap();
            let a = m.alloc_region(4, 8).unwrap();
            let freed = m.alloc_region(2, 8).unwrap();
            let c = m.alloc_region(3, 16).unwrap();
            m.write(a, 1, &[7u8; 8]).unwrap();
            m.write_blocks(c, 0, &[5u8; 48]).unwrap();
            m.free_region(freed).unwrap();
            m.sync().unwrap();
        }
        let mut m = DiskMemory::open(&store).unwrap();
        // Contents and written bitmaps survive.
        assert_eq!(m.read(RegionId(0), 1).unwrap(), &[7u8; 8]);
        assert_eq!(m.read(RegionId(0), 0), Err(HostError::EmptyBlock(RegionId(0), 0)));
        let mut out = Vec::new();
        m.read_blocks(RegionId(2), 0, 3, &mut out).unwrap();
        assert_eq!(out, vec![5u8; 48]);
        // The freed region stays a tombstone...
        assert_eq!(m.read(RegionId(1), 0), Err(HostError::UnknownRegion(RegionId(1))));
        // ...and id allocation resumes exactly past it.
        assert_eq!(m.alloc_region(1, 4).unwrap(), RegionId(3));
    }

    #[test]
    fn open_without_meta_or_with_mismatched_file_fails() {
        let guard = TempDir::new("oblidb-disk-badopen").unwrap();
        let store = guard.path().join("db");
        // No region table at all.
        std::fs::create_dir_all(&store).unwrap();
        assert!(DiskMemory::open(&store).is_err());
        // A region file whose size disagrees with the table.
        {
            let mut m = DiskMemory::create(guard.path().join("db2")).unwrap();
            let _r = m.alloc_region(4, 8).unwrap();
            m.sync().unwrap();
        }
        let blk = guard.path().join("db2").join("region-00000000.blk");
        std::fs::OpenOptions::new().write(true).open(&blk).unwrap().set_len(7).unwrap();
        let err = match DiskMemory::open(guard.path().join("db2")) {
            Ok(_) => panic!("size-mismatched region file must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // A corrupt region table.
        {
            let mut m = DiskMemory::create(guard.path().join("db3")).unwrap();
            let _r = m.alloc_region(1, 4).unwrap();
            m.sync().unwrap();
        }
        std::fs::write(guard.path().join("db3").join(REGION_META_FILE), b"garbage").unwrap();
        let err = match DiskMemory::open(guard.path().join("db3")) {
            Ok(_) => panic!("corrupt region table must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn failed_alloc_surfaces_io_error_with_context() {
        let guard = TempDir::new("oblidb-disk-allocfail").unwrap();
        let store = guard.path().join("db");
        let mut m = DiskMemory::create(&store).unwrap();
        // Make the next region file impossible to create: a directory
        // squats on its path (works even when running as root, where
        // permission bits would not stop us).
        std::fs::create_dir(store.join("region-00000000.blk")).unwrap();
        let err = m.alloc_region(4, 8).unwrap_err();
        assert!(
            matches!(err, HostError::Io { op: IoOp::Alloc, region: Some(RegionId(0)), .. }),
            "{err:?}"
        );
        // The substrate stays usable: remove the obstacle and allocate.
        std::fs::remove_dir(store.join("region-00000000.blk")).unwrap();
        let r = m.alloc_region(4, 8).unwrap();
        assert_eq!(r, RegionId(0), "a failed allocation consumes no region id");
        m.write(r, 0, &[1u8; 8]).unwrap();
    }

    #[test]
    fn sync_region_persists_table_and_file() {
        let guard = TempDir::new("oblidb-disk-syncregion").unwrap();
        let store = guard.path().join("db");
        {
            let mut m = DiskMemory::create(&store).unwrap();
            let r = m.alloc_region(2, 4).unwrap();
            m.write(r, 0, &[3u8; 4]).unwrap();
            // Only the region-level flush — no full sync.
            m.sync_region(r).unwrap();
        }
        let mut m = DiskMemory::open(&store).unwrap();
        assert_eq!(m.read(RegionId(0), 0).unwrap(), &[3u8; 4]);
    }

    #[test]
    fn incremental_meta_patching_matches_full_rebuild() {
        let guard = TempDir::new("oblidb-disk-metapatch").unwrap();
        let (a_dir, b_dir) = (guard.path().join("a"), guard.path().join("b"));
        // Store A persists the table first, so its block writes go through
        // the in-place bitmap patch; store B writes first, so its single
        // sync serializes everything from scratch. Identical logical state
        // must produce byte-identical region tables either way.
        let mut a = DiskMemory::create(&a_dir).unwrap();
        let ra = a.alloc_region(130, 4).unwrap();
        a.sync().unwrap();
        let mut b = DiskMemory::create(&b_dir).unwrap();
        let rb = b.alloc_region(130, 4).unwrap();
        for (m, r) in [(&mut a, ra), (&mut b, rb)] {
            m.write(r, 0, &[1; 4]).unwrap();
            m.write(r, 129, &[2; 4]).unwrap();
            // A run spanning two bitmap words, via every write kind.
            m.write_blocks(r, 60, &[3u8; 40]).unwrap();
            m.write_blocks_at(r, &[64, 7], &[4u8; 8]).unwrap();
        }
        a.sync_region(ra).unwrap();
        b.sync().unwrap();
        let meta_a = std::fs::read(a_dir.join(REGION_META_FILE)).unwrap();
        let meta_b = std::fs::read(b_dir.join(REGION_META_FILE)).unwrap();
        assert_eq!(meta_a, meta_b, "patched table must equal a full rebuild");
        // A structural change (new region) invalidates the cached table;
        // the next sync_region rebuilds and persists both regions.
        let r2 = a.alloc_region(5, 8).unwrap();
        a.write(r2, 4, &[9; 8]).unwrap();
        a.sync_region(r2).unwrap();
        drop(a);
        let mut re = DiskMemory::open(&a_dir).unwrap();
        assert_eq!(re.read(RegionId(0), 129).unwrap(), &[2; 4]);
        assert_eq!(re.read(RegionId(1), 4).unwrap(), &[9; 8]);
        assert_eq!(re.read(RegionId(0), 20), Err(HostError::EmptyBlock(RegionId(0), 20)));
    }

    #[test]
    fn sync_region_after_grow_persists_new_geometry() {
        let guard = TempDir::new("oblidb-disk-growsync").unwrap();
        let store = guard.path().join("db");
        let mut m = DiskMemory::create(&store).unwrap();
        let r = m.alloc_region(2, 4).unwrap();
        m.write(r, 0, &[1; 4]).unwrap();
        m.sync().unwrap();
        m.grow_region(r, 70).unwrap();
        m.write(r, 69, &[5; 4]).unwrap();
        m.sync_region(r).unwrap();
        drop(m);
        let mut re = DiskMemory::open(&store).unwrap();
        assert_eq!(re.region_len(RegionId(0)).unwrap(), 70);
        assert_eq!(re.read(RegionId(0), 69).unwrap(), &[5; 4]);
        assert_eq!(re.read(RegionId(0), 0).unwrap(), &[1; 4]);
    }

    #[test]
    fn create_refuses_existing_region_files() {
        let guard = TempDir::new("oblidb-disk-reopen").unwrap();
        let store = guard.path().join("db");
        {
            let mut m = DiskMemory::create(&store).unwrap();
            let r = m.alloc_region(2, 4).unwrap();
            m.write(r, 0, &[1; 4]).unwrap();
        }
        // A second open must not silently truncate the persisted files.
        let err = match DiskMemory::create(&store) {
            Ok(_) => panic!("reopen over existing region files must be refused"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        let bytes = std::fs::read(store.join("region-00000000.blk")).unwrap();
        assert_eq!(&bytes[..4], &[1; 4], "refused open leaves the data untouched");
    }

    #[test]
    fn grow_preserves_content_and_extends_bounds() {
        let mut m = DiskMemory::temp().unwrap();
        let r = m.alloc_region(2, 4).unwrap();
        m.write(r, 1, &[7; 4]).unwrap();
        m.grow_region(r, 10).unwrap();
        assert_eq!(m.region_len(r).unwrap(), 10);
        assert_eq!(m.read(r, 1).unwrap(), &[7; 4]);
        m.write(r, 9, &[3; 4]).unwrap();
        assert_eq!(m.read(r, 9).unwrap(), &[3; 4]);
    }

    #[test]
    fn batched_ops_count_one_crossing() {
        let mut m = DiskMemory::temp().unwrap();
        let r = m.alloc_region(8, 4).unwrap();
        m.reset_stats();
        m.write_blocks(r, 0, &[0u8; 32]).unwrap();
        let mut out = Vec::new();
        m.read_blocks(r, 0, 8, &mut out).unwrap();
        let s = m.stats();
        assert_eq!(s.crossings, 2);
        assert_eq!((s.reads, s.writes), (8, 8));
    }
}
