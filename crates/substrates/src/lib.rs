//! Production-shaped [`EnclaveMemory`](oblidb_enclave::EnclaveMemory) substrates.
//!
//! ObliDB's trusted code drives untrusted storage through the
//! [`EnclaveMemory`](oblidb_enclave::EnclaveMemory) seam and never cares
//! where blocks actually live. The
//! [`Host`](oblidb_enclave::Host) substrate keeps them in RAM; this crate
//! adds the backends a deployment needs once datasets outgrow one
//! machine's memory:
//!
//! * [`DiskMemory`] — file-per-region storage with a block-aligned layout.
//!   Batched reads/writes map to single positioned I/O calls, so the
//!   `read_blocks`/`write_blocks` path the engine already uses amortizes
//!   both the enclave crossing *and* the syscall.
//! * [`CachedMemory`] — a write-back LRU of hot sealed blocks wrapping any
//!   inner substrate. Every *logical* access is still traced and counted
//!   at the wrapper, so the adversary's view is exactly the view a raw
//!   [`Host`](oblidb_enclave::Host) would give — caching changes backing
//!   traffic, never the access pattern.
//! * [`ShardedMemory`] — routes regions round-robin across N inner
//!   substrates, with per-shard counters. The placement prerequisite for
//!   concurrent query execution over multiple backing stores.
//! * [`AnySubstrate`] + [`SubstrateSpec`] — runtime substrate selection:
//!   one enum type implementing
//!   [`EnclaveMemory`](oblidb_enclave::EnclaveMemory), so a single
//!   `Database<AnySubstrate>` can open over any backend chosen from
//!   configuration.
//!
//! All three substrates reproduce the [`Host`](oblidb_enclave::Host)
//! contract bit-for-bit: same error taxonomy and precedence, same
//! per-block trace events (including failed attempts), same stats
//! accounting (one crossing per call, per-block read/write counts). The
//! root-package `tests/substrate_conformance.rs` suite drives the full
//! engine over every substrate and asserts byte-identical results and
//! traces against `Host`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod any;
mod cache;
pub mod config;
mod disk;
mod shard;
mod tempdir;

pub use any::{AnySubstrate, ParseSubstrateError, SubstrateSpec, DEFAULT_CACHE_BLOCKS};
pub use cache::{CacheStats, CachedMemory};
pub use config::{ConfigError, SubstrateConfig};
pub use disk::{DiskMemory, REGION_META_FILE};
pub use shard::ShardedMemory;
pub use tempdir::TempDir;
