//! Region routing across multiple inner substrates.

use oblidb_enclave::{
    AccessEvent, AccessKind, EnclaveMemory, HostError, HostStats, RegionId, ThreadPool, Trace,
};

/// Routes regions round-robin across N inner [`EnclaveMemory`] shards —
/// the placement layer for multi-backing-store deployments and the
/// prerequisite for concurrent query execution (each shard can live on
/// its own device or, later, its own thread).
///
/// Identity: callers see *global* region ids allocated in order, exactly
/// like [`Host`](oblidb_enclave::Host); the wrapper maps each to a
/// `(shard, inner region)` pair. The wrapper records the adversary trace
/// in global ids (reconstructing the exact per-block prefix `Host` would
/// record when a batched call fails mid-way), and every error is re-tagged
/// with the global region id, so traces, stats, and error values are
/// indistinguishable from a single-substrate run.
///
/// Stats: [`EnclaveMemory::stats`] sums the shards; [`ShardedMemory::shard_stats`]
/// exposes the per-shard counters (including per-shard boundary
/// crossings) for placement diagnostics and bench reporting.
pub struct ShardedMemory<M: EnclaveMemory> {
    shards: Vec<M>,
    /// Global region id → (shard index, inner region id).
    regions: Vec<Option<(usize, RegionId)>>,
    next_shard: usize,
    trace: Option<Vec<AccessEvent>>,
}

impl<M: EnclaveMemory> ShardedMemory<M> {
    /// Wraps the given shards (at least one).
    pub fn new(shards: Vec<M>) -> Self {
        assert!(!shards.is_empty(), "sharded memory needs at least one shard");
        ShardedMemory { shards, regions: Vec::new(), next_shard: 0, trace: None }
    }

    /// Builds `n` shards from a constructor closure (shard index as
    /// argument).
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> M) -> Self {
        Self::new((0..n).map(f).collect())
    }

    /// Re-attaches to shards a previous `ShardedMemory` populated.
    ///
    /// Round-robin placement makes the global→inner mapping a pure
    /// function of the allocation index: global region `g` lives on shard
    /// `g % N` as that shard's region `g / N` (both global and inner ids
    /// are monotonic and never reused, frees included). `slots[i]` is
    /// shard `i`'s total region-slot count — live regions *plus*
    /// tombstones — as reported by the reopened inner substrate; freed
    /// globals are reconstructed as tombstones by probing liveness, and
    /// the round-robin cursor resumes where the persisted store left off.
    pub fn reattach(shards: Vec<M>, slots: &[usize]) -> Self {
        assert_eq!(shards.len(), slots.len(), "one slot count per shard");
        assert!(!shards.is_empty(), "sharded memory needs at least one shard");
        let n = shards.len();
        let total: usize = slots.iter().sum();
        let mut regions = Vec::with_capacity(total);
        for g in 0..total {
            let (shard, inner) = (g % n, RegionId((g / n) as u32));
            let live = shards[shard].region_len(inner).is_ok();
            regions.push(live.then_some((shard, inner)));
        }
        ShardedMemory { shards, regions, next_shard: total % n, trace: None }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's counters: the traffic (block accesses, bytes, boundary
    /// crossings) that routing sent its way.
    pub fn shard_stats(&self, shard: usize) -> HostStats {
        self.shards[shard].stats()
    }

    /// The shards themselves (e.g. to read disk paths or cache stats).
    pub fn shards(&self) -> &[M] {
        &self.shards
    }

    /// Mutable access to one shard, for substrate-level configuration
    /// (crossing costs etc.). Block I/O through this bypasses the global
    /// trace.
    pub fn shard_mut(&mut self, shard: usize) -> &mut M {
        &mut self.shards[shard]
    }

    fn resolve(&self, region: RegionId) -> Result<(usize, RegionId), HostError> {
        self.regions.get(region.0 as usize).and_then(|r| *r).ok_or(HostError::UnknownRegion(region))
    }

    fn record(&mut self, region: RegionId, index: u64, kind: AccessKind) {
        if let Some(t) = &mut self.trace {
            t.push(AccessEvent { region, index, kind });
        }
    }

    /// Re-tags an inner error with the global region id. Every error a
    /// forwarded call can produce refers to the region it was called on.
    fn retag(region: RegionId, e: HostError) -> HostError {
        match e {
            HostError::UnknownRegion(_) => HostError::UnknownRegion(region),
            HostError::OutOfBounds { index, len, .. } => {
                HostError::OutOfBounds { region, index, len }
            }
            HostError::EmptyBlock(_, i) => HostError::EmptyBlock(region, i),
            HostError::BlockSizeMismatch { expected, got, .. } => {
                HostError::BlockSizeMismatch { region, expected, got }
            }
            // Re-tag the region context; the kind and operation carry over.
            HostError::Io { kind, region: r, op } => {
                HostError::Io { kind, region: r.map(|_| region), op }
            }
        }
    }

    /// The block index a mid-batch failure stopped at, if the error names
    /// one. `Host` records per-block events up to and including the
    /// failing block; the wrapper reconstructs exactly that prefix.
    fn err_index(e: &HostError) -> Option<u64> {
        match e {
            HostError::OutOfBounds { index, .. } => Some(*index),
            HostError::EmptyBlock(_, i) => Some(*i),
            _ => None,
        }
    }

    /// Records the per-block events of a contiguous batched call, cut to
    /// the prefix `Host` would have recorded on failure.
    fn record_run(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        kind: AccessKind,
        res: &Result<(), HostError>,
    ) {
        if self.trace.is_none() {
            return;
        }
        let events = match res {
            Ok(()) => count as u64,
            Err(e) => match Self::err_index(e) {
                Some(i) if i >= start && i < start + count as u64 => i - start + 1,
                _ => 0,
            },
        };
        for index in start..start + events {
            self.record(region, index, kind);
        }
    }

    /// Worker-per-shard execution: runs `f(shard_index, &mut shard)` for
    /// every shard through `pool`, each worker holding exclusive `&mut`
    /// access to a contiguous range of shards — no locks, no sharing.
    /// Results come back in shard order; stats still aggregate per shard
    /// ([`EnclaveMemory::stats`] sums them after the join); a panicking
    /// worker is joined with the rest, then its panic propagates.
    ///
    /// Block I/O through the shard handles bypasses the wrapper's global
    /// trace, exactly like [`ShardedMemory::shard_mut`]. In this mode the
    /// adversary's view is the set of per-shard traces (each shard's own
    /// `start_trace`/`take_trace`), and each of those is unchanged from a
    /// serial drive of the same per-shard work — only the interleaving
    /// *across* shards differs, which the enclave boundary already leaks.
    /// `tests/parallel_conformance.rs` asserts exactly that.
    pub fn for_each_shard<R: Send>(
        &mut self,
        pool: &ThreadPool,
        f: impl Fn(usize, &mut M) -> R + Sync,
    ) -> Vec<R>
    where
        M: Send,
    {
        pool.for_each_mut(&mut self.shards, f)
    }

    /// Gather/scatter variant of [`ShardedMemory::record_run`].
    fn record_list(
        &mut self,
        region: RegionId,
        indices: &[u64],
        kind: AccessKind,
        res: &Result<(), HostError>,
    ) {
        if self.trace.is_none() {
            return;
        }
        let events = match res {
            Ok(()) => indices.len(),
            Err(e) => match Self::err_index(e) {
                Some(i) => indices.iter().position(|&x| x == i).map_or(0, |p| p + 1),
                None => 0,
            },
        };
        for &index in &indices[..events] {
            self.record(region, index, kind);
        }
    }
}

impl<M: EnclaveMemory> EnclaveMemory for ShardedMemory<M> {
    fn alloc_region(&mut self, blocks: usize, block_size: usize) -> Result<RegionId, HostError> {
        let shard = self.next_shard;
        let id = RegionId(self.regions.len() as u32);
        // A failed inner allocation registers nothing and does not advance
        // the round-robin cursor, so the next attempt targets the same
        // shard a single-substrate run would have.
        let inner =
            self.shards[shard].alloc_region(blocks, block_size).map_err(|e| Self::retag(id, e))?;
        self.next_shard = (self.next_shard + 1) % self.shards.len();
        self.regions.push(Some((shard, inner)));
        Ok(id)
    }

    fn free_region(&mut self, region: RegionId) -> Result<(), HostError> {
        if let Ok((shard, inner)) = self.resolve(region) {
            self.shards[shard].free_region(inner).map_err(|e| Self::retag(region, e))?;
            self.regions[region.0 as usize] = None;
        }
        Ok(())
    }

    fn grow_region(&mut self, region: RegionId, new_blocks: usize) -> Result<(), HostError> {
        let (shard, inner) = self.resolve(region)?;
        self.shards[shard].grow_region(inner, new_blocks).map_err(|e| Self::retag(region, e))
    }

    fn region_len(&self, region: RegionId) -> Result<u64, HostError> {
        let (shard, inner) = self.resolve(region)?;
        self.shards[shard].region_len(inner).map_err(|e| Self::retag(region, e))
    }

    fn region_block_size(&self, region: RegionId) -> Result<usize, HostError> {
        let (shard, inner) = self.resolve(region)?;
        self.shards[shard].region_block_size(inner).map_err(|e| Self::retag(region, e))
    }

    fn read(&mut self, region: RegionId, index: u64) -> Result<&[u8], HostError> {
        // Host records the attempt before validating; so does the wrapper.
        self.record(region, index, AccessKind::Read);
        let (shard, inner) = self.resolve(region)?;
        self.shards[shard].read(inner, index).map_err(|e| Self::retag(region, e))
    }

    fn write(&mut self, region: RegionId, index: u64, data: &[u8]) -> Result<(), HostError> {
        self.record(region, index, AccessKind::Write);
        let (shard, inner) = self.resolve(region)?;
        self.shards[shard].write(inner, index, data).map_err(|e| Self::retag(region, e))
    }

    fn read_blocks(
        &mut self,
        region: RegionId,
        start: u64,
        count: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        // Clear before resolving: Host never leaves stale bytes in the
        // caller's buffer, even on UnknownRegion.
        out.clear();
        let (shard, inner) = self.resolve(region)?;
        let res = self.shards[shard]
            .read_blocks(inner, start, count, out)
            .map_err(|e| Self::retag(region, e));
        self.record_run(region, start, count, AccessKind::Read, &res);
        res
    }

    fn read_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        out: &mut Vec<u8>,
    ) -> Result<(), HostError> {
        out.clear();
        let (shard, inner) = self.resolve(region)?;
        let res = self.shards[shard]
            .read_blocks_at(inner, indices, out)
            .map_err(|e| Self::retag(region, e));
        self.record_list(region, indices, AccessKind::Read, &res);
        res
    }

    fn write_blocks(&mut self, region: RegionId, start: u64, data: &[u8]) -> Result<(), HostError> {
        let (shard, inner) = self.resolve(region)?;
        let block_size =
            self.shards[shard].region_block_size(inner).map_err(|e| Self::retag(region, e))?;
        let res =
            self.shards[shard].write_blocks(inner, start, data).map_err(|e| Self::retag(region, e));
        let count = data.len().checked_div(block_size).unwrap_or(0);
        self.record_run(region, start, count, AccessKind::Write, &res);
        res
    }

    fn write_blocks_at(
        &mut self,
        region: RegionId,
        indices: &[u64],
        data: &[u8],
    ) -> Result<(), HostError> {
        let (shard, inner) = self.resolve(region)?;
        let res = self.shards[shard]
            .write_blocks_at(inner, indices, data)
            .map_err(|e| Self::retag(region, e));
        self.record_list(region, indices, AccessKind::Write, &res);
        res
    }

    fn start_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    fn take_trace(&mut self) -> Trace {
        Trace(self.trace.take().unwrap_or_default())
    }

    fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// The sum of all shards' counters (each forwarded call performs
    /// exactly one inner call, so totals match a single-substrate run).
    fn stats(&self) -> HostStats {
        self.shards.iter().map(|s| s.stats()).sum()
    }

    fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.reset_stats();
        }
    }

    fn retains_payloads(&self) -> bool {
        self.shards.iter().all(|s| s.retains_payloads())
    }

    fn sync(&mut self) -> Result<(), HostError> {
        for s in &mut self.shards {
            s.sync()?;
        }
        Ok(())
    }

    fn sync_region(&mut self, region: RegionId) -> Result<(), HostError> {
        let (shard, inner) = self.resolve(region)?;
        self.shards[shard].sync_region(inner).map_err(|e| Self::retag(region, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_enclave::Host;

    #[test]
    fn round_robin_placement_and_per_shard_stats() {
        let mut m = ShardedMemory::from_fn(3, |_| Host::new());
        let regions: Vec<RegionId> = (0..6).map(|_| m.alloc_region(4, 8).unwrap()).collect();
        assert_eq!(regions[4], RegionId(4), "global ids are sequential");
        for (i, &r) in regions.iter().enumerate() {
            m.write(r, 0, &[i as u8; 8]).unwrap();
        }
        // 6 regions over 3 shards round-robin → 2 writes per shard.
        for shard in 0..3 {
            assert_eq!(m.shard_stats(shard).writes, 2);
        }
        assert_eq!(m.stats().writes, 6);
        for (i, &r) in regions.iter().enumerate() {
            assert_eq!(m.read(r, 0).unwrap(), &[i as u8; 8]);
        }
    }

    #[test]
    fn trace_and_stats_match_host() {
        fn drive<M: EnclaveMemory>(m: &mut M) -> (Trace, HostStats, Vec<u8>) {
            let a = m.alloc_region(8, 4).unwrap();
            let b = m.alloc_region(8, 4).unwrap();
            m.start_trace();
            m.reset_stats();
            let data: Vec<u8> = (0..32).collect();
            m.write_blocks(a, 0, &data).unwrap();
            m.write_blocks_at(b, &[5, 1], &data[..8]).unwrap();
            let mut out = Vec::new();
            m.read_blocks(a, 1, 5, &mut out).unwrap();
            let mut g = Vec::new();
            m.read_blocks_at(b, &[1, 5], &mut g).unwrap();
            out.extend_from_slice(&g);
            out.extend_from_slice(m.read(a, 7).unwrap());
            (m.take_trace(), m.stats(), out)
        }
        let (ht, hs, hb) = drive(&mut Host::new());
        let (st, ss, sb) = drive(&mut ShardedMemory::from_fn(2, |_| Host::new()));
        assert_eq!(ht, st, "global-id trace must match a single Host");
        assert_eq!(hs, ss);
        assert_eq!(hb, sb);
    }

    #[test]
    fn failed_batches_trace_the_host_prefix() {
        fn drive<M: EnclaveMemory>(m: &mut M) -> (Trace, Vec<HostError>) {
            let r = m.alloc_region(4, 2).unwrap();
            m.start_trace();
            let mut errs = Vec::new();
            m.write_blocks(r, 0, &[0u8; 4]).unwrap();
            let mut out = Vec::new();
            // EmptyBlock at index 2 after two good blocks.
            errs.push(m.read_blocks(r, 0, 4, &mut out).unwrap_err());
            // Gather failing at the second index (block 3 still empty).
            errs.push(m.read_blocks_at(r, &[1, 3, 0], &mut out).unwrap_err());
            // OutOfBounds at 4 after two good writes (partial write).
            errs.push(m.write_blocks(r, 2, &[0u8; 6]).unwrap_err());
            // Ragged buffer: rejected before any event.
            errs.push(m.write_blocks(r, 0, &[0u8; 3]).unwrap_err());
            // Count mismatch on scatter: rejected before any event.
            errs.push(m.write_blocks_at(r, &[0], &[0u8; 4]).unwrap_err());
            (m.take_trace(), errs)
        }
        let (ht, he) = drive(&mut Host::new());
        let (st, se) = drive(&mut ShardedMemory::from_fn(3, |_| Host::new()));
        assert_eq!(he, se, "errors must carry global region ids");
        assert_eq!(ht, st, "failure-path traces must match Host event-for-event");
    }

    #[test]
    fn worker_per_shard_traces_match_serial_drive() {
        // The same per-shard workload driven serially and by a 4-worker
        // pool: each shard's own trace (the adversary's view in
        // worker-per-shard mode) and the aggregated stats must match.
        fn drive(m: &mut ShardedMemory<Host>, pool: &ThreadPool) -> Vec<Trace> {
            m.for_each_shard(pool, |i, shard| {
                shard.start_trace();
                let r = shard.alloc_region(4, 8).unwrap();
                for b in 0..4 {
                    shard.write(r, b, &[i as u8; 8]).unwrap();
                }
                let mut out = Vec::new();
                shard.read_blocks(r, 0, 4, &mut out).unwrap();
                assert_eq!(out, vec![i as u8; 32]);
                shard.take_trace()
            })
        }
        let mut serial = ShardedMemory::from_fn(4, |_| Host::new());
        let mut parallel = ShardedMemory::from_fn(4, |_| Host::new());
        let st = drive(&mut serial, &ThreadPool::serial());
        let pt = drive(&mut parallel, &ThreadPool::new(4));
        assert_eq!(st, pt, "per-shard traces are unchanged by the worker pool");
        assert_eq!(serial.stats(), parallel.stats());
        for shard in 0..4 {
            assert_eq!(serial.shard_stats(shard), parallel.shard_stats(shard));
        }
    }

    #[test]
    fn unknown_region_after_free() {
        let mut m = ShardedMemory::from_fn(2, |_| Host::new());
        let r = m.alloc_region(2, 4).unwrap();
        m.free_region(r).unwrap();
        assert_eq!(m.read(r, 0), Err(HostError::UnknownRegion(r)));
        assert_eq!(m.region_len(r), Err(HostError::UnknownRegion(r)));
    }
}
