//! A self-cleaning temporary directory (the workspace is dependency-free,
//! so no `tempfile` crate).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root that is removed (recursively)
/// on drop. [`DiskMemory::temp`](crate::DiskMemory::temp) uses it so
/// `cargo test` and bench runs leave no artifacts behind; tests can also
/// use it directly for any scratch space.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh, uniquely named directory under
    /// [`std::env::temp_dir`]. Uniqueness comes from the process id, a
    /// process-wide counter, and the current wall clock; collisions with
    /// leftover directories are retried.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        loop {
            let nonce = COUNTER.fetch_add(1, Ordering::Relaxed);
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let path = std::env::temp_dir()
                .join(format!("{prefix}-{}-{nonce}-{nanos:x}", std::process::id()));
            match std::fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort: a failed cleanup must not panic a test run.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let dir = TempDir::new("oblidb-tempdir-test").unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        std::fs::write(path.join("f"), b"x").unwrap();
        drop(dir);
        assert!(!path.exists(), "drop must remove the directory and its contents");
    }

    #[test]
    fn distinct_paths() {
        let a = TempDir::new("oblidb-tempdir-test").unwrap();
        let b = TempDir::new("oblidb-tempdir-test").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
