//! Enclave-safe telemetry for ObliDB: hierarchical spans and a
//! process-wide metrics registry, both dependency-free and safe to run
//! *inside* the trust boundary.
//!
//! # Threat model / leakage rationale
//!
//! Everything this crate records lives in enclave memory: span records go
//! to a **fixed-capacity ring buffer preallocated when telemetry is first
//! enabled**, and metrics are plain atomics. Recording therefore never
//! allocates on the hot path (allocation patterns are host-observable)
//! and never touches an [`EnclaveMemory`] substrate — the conformance
//! suite asserts that enabling telemetry leaves query traces, counters,
//! and sealed bytes bit-identical. What *is* sensitive is **export**: a
//! snapshot reveals aggregate counts and timings, so exporters
//! ([`MetricsSnapshot::to_text`] / [`MetricsSnapshot::to_json`],
//! [`take_spans`]) must only be called at explicit boundary points the
//! operator already trusts (end of a session, a bench run, an
//! `EXPLAIN ANALYZE` the client asked for) — never mid-query on a path
//! an adversary can time.
//!
//! # Cost when disabled
//!
//! Every recording entry point loads one static
//! [`AtomicBool`](std::sync::atomic::AtomicBool) (relaxed)
//! and branches. No clock read, no lock, no allocation, no host access.
//! That is the entire disabled-mode cost, asserted by the overhead bench
//! (`BENCH_telemetry.json`) and the conformance suite.
//!
//! [`EnclaveMemory`]: https://docs.rs/oblidb-enclave

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod spans;

pub use metrics::{
    counter_add, histogram_record, reset_metrics, snapshot, Counter, HistogramId,
    HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use spans::{
    dropped_spans, enabled, set_enabled, span, take_spans, SpanGuard, SpanKind, SpanRecord,
    RING_CAPACITY,
};
