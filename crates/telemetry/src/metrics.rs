//! A process-wide metrics registry: named counters and log₂ histograms.
//!
//! The registry is a fixed set of atomics — no allocation, no locks, no
//! host accesses on the recording path. [`counter_add`] and
//! [`histogram_record`] are gated on the same static enable flag as
//! spans, so disabled telemetry pays exactly one branch. [`snapshot`]
//! copies the atomics into an owned [`MetricsSnapshot`] that callers can
//! extend with substrate counters (`HostStats`, cache stats, plan-cache
//! stats) before exporting as text or JSON — export is a boundary-point
//! operation, per the crate-level leakage rationale.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::spans::enabled;

/// Buckets per histogram: one per power of two of the recorded value
/// (bucket 0 holds values 0 and 1).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Every named counter the engine maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Statements prepared (parse + plan or cache hit).
    Prepares,
    /// Prepared-plan cache hits.
    PlanCacheHits,
    /// Prepared-plan cache misses (full planning runs).
    PlanCacheMisses,
    /// Statements executed through `run_plan`.
    StatementsRun,
    /// WAL records appended.
    WalAppends,
    /// WAL records decoded during crash recovery.
    WalRecoveredRecords,
    /// Blocks sealed through the batch AEAD path.
    BlocksSealed,
    /// Blocks opened through the batch AEAD path.
    BlocksOpened,
    /// Payload bytes sealed through the batch AEAD path.
    BytesSealed,
    /// Payload bytes opened through the batch AEAD path.
    BytesOpened,
    /// Path ORAM accesses (real + dummy).
    OramAccesses,
    /// Jobs executed by `ThreadPool` workers.
    PoolJobs,
    /// Statement traces checked by the oblivious-trace auditor.
    AuditChecks,
    /// Auditor divergences: same statement shape, different trace.
    AuditViolations,
    /// Statements the auditor skipped (caller already owned the trace).
    AuditSkips,
    /// Connections accepted by a serving front-end.
    ServerConnections,
    /// Statements received over the wire.
    ServerStatements,
    /// Request bytes read off the wire (frame headers + payloads).
    ServerBytesIn,
    /// Response bytes written to the wire (frame headers + payloads).
    ServerBytesOut,
    /// Statements that returned an error frame.
    ServerErrors,
    /// Multi-statement transactions committed (buffered batch applied).
    TxnCommits,
    /// Transactions aborted: explicit ROLLBACK, failed commit-time
    /// validation, or a session dropped mid-transaction.
    TxnAborts,
    /// Epoch-commit group fsyncs — one per closed epoch, however many
    /// statements it covered.
    EpochFsyncs,
    /// ORAM requests in a batch served without their own path fetch
    /// (repeat addresses answered from the stash after the first fetch).
    OramBatchedFetches,
}

/// Number of [`Counter`] variants (the registry's fixed size).
const COUNTER_COUNT: usize = Counter::OramBatchedFetches as usize + 1;

const COUNTER_NAMES: [&str; COUNTER_COUNT] = [
    "prepares",
    "plan_cache_hits",
    "plan_cache_misses",
    "statements_run",
    "wal_appends",
    "wal_recovered_records",
    "blocks_sealed",
    "blocks_opened",
    "bytes_sealed",
    "bytes_opened",
    "oram_accesses",
    "pool_jobs",
    "audit_checks",
    "audit_violations",
    "audit_skips",
    "server_connections",
    "server_statements",
    "server_bytes_in",
    "server_bytes_out",
    "server_errors",
    "txn_commits",
    "txn_aborts",
    "epoch_fsyncs",
    "oram_batched_fetches",
];

/// Every log₂ histogram the engine maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistogramId {
    /// Wall nanoseconds per executed statement.
    StatementNanos,
    /// Blocks per batch seal call.
    SealBatchBlocks,
    /// Blocks per batch open call.
    OpenBatchBlocks,
    /// Wall nanoseconds per Path ORAM access.
    OramPathNanos,
}

const HISTOGRAM_COUNT: usize = HistogramId::OramPathNanos as usize + 1;

const HISTOGRAM_NAMES: [&str; HISTOGRAM_COUNT] =
    ["statement_nanos", "seal_batch_blocks", "open_batch_blocks", "oram_path_nanos"];

static COUNTERS: [AtomicU64; COUNTER_COUNT] = [const { AtomicU64::new(0) }; COUNTER_COUNT];

static HISTOGRAMS: [[AtomicU64; HISTOGRAM_BUCKETS]; HISTOGRAM_COUNT] =
    [const { [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS] }; HISTOGRAM_COUNT];

impl Counter {
    /// Stable exporter label.
    pub fn name(self) -> &'static str {
        COUNTER_NAMES[self as usize]
    }
}

impl HistogramId {
    /// Stable exporter label.
    pub fn name(self) -> &'static str {
        HISTOGRAM_NAMES[self as usize]
    }
}

/// Adds `delta` to a counter. One branch when telemetry is disabled.
///
/// Safe under unsynchronized concurrency: each add is a relaxed atomic
/// RMW, so no increment is ever lost, and every counter read by
/// [`snapshot`] is individually exact at its own load point. Relaxed
/// ordering means a snapshot taken while threads are mid-operation may
/// straddle causally related counters (e.g. `server_statements` bumped
/// before the matching `statements_run` lands) — quiesce first when
/// exact cross-counter consistency matters.
#[inline]
pub fn counter_add(counter: Counter, delta: u64) {
    if enabled() {
        COUNTERS[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }
}

/// The log₂ bucket a value lands in: `⌊log₂(max(value, 1))⌋`.
pub fn bucket_index(value: u64) -> usize {
    (63 - (value | 1).leading_zeros()) as usize
}

/// Records one observation. One branch when telemetry is disabled.
#[inline]
pub fn histogram_record(hist: HistogramId, value: u64) {
    if enabled() {
        HISTOGRAMS[hist as usize][bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Zeroes every counter and histogram (test/bench isolation).
pub fn reset_metrics() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for h in &HISTOGRAMS {
        for b in h {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// One histogram, copied out of the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Exporter label.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Non-empty buckets as `(lower_bound, count)`; `lower_bound` is the
    /// smallest value the bucket admits (0, then powers of two).
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of the registry, extensible with caller-side
/// counters before export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter pairs, registry counters first.
    pub counters: Vec<(String, u64)>,
    /// Histograms with at least the registry's entries.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Copies the registry into a snapshot. Reading is always allowed (it is
/// the caller's export decision that gates leakage, not the flag).
pub fn snapshot() -> MetricsSnapshot {
    let counters = COUNTER_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| (name.to_string(), COUNTERS[i].load(Ordering::Relaxed)))
        .collect();
    let histograms = HISTOGRAM_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut count = 0;
            let mut buckets = Vec::new();
            for (b, cell) in HISTOGRAMS[i].iter().enumerate() {
                let v = cell.load(Ordering::Relaxed);
                if v > 0 {
                    count += v;
                    buckets.push((if b == 0 { 0 } else { 1u64 << b }, v));
                }
            }
            HistogramSnapshot { name: name.to_string(), count, buckets }
        })
        .collect();
    MetricsSnapshot { counters, histograms }
}

impl MetricsSnapshot {
    /// Appends a caller-side counter (e.g. a `HostStats` field or a cache
    /// hit count) so substrate numbers export alongside engine ones.
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Plain-text export, one `name value` line per counter, then one
    /// line per histogram with its non-empty buckets.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("{name} {value}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!("{} count={}", h.name, h.count));
            for (lo, n) in &h.buckets {
                out.push_str(&format!(" ge{lo}={n}"));
            }
            out.push('\n');
        }
        out
    }

    /// JSON export (hand-rolled; the workspace is dependency-free):
    /// `{"counters": {name: value, …}, "histograms": [{name, count,
    /// buckets: [[lower_bound, count], …]}, …]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            out.push_str(&format!(
                "\n    {}: {}{}",
                json_str(name),
                value,
                if i + 1 < self.counters.len() { "," } else { "" }
            ));
        }
        out.push_str("\n  },\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            let buckets: Vec<String> =
                h.buckets.iter().map(|(lo, n)| format!("[{lo}, {n}]")).collect();
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"count\": {}, \"buckets\": [{}]}}{}",
                json_str(&h.name),
                h.count,
                buckets.join(", "),
                if i + 1 < self.histograms.len() { "," } else { "" }
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// JSON string quoting per RFC 8259.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::{set_enabled, test_gate};

    /// Metrics tests share the process-global registry and enable flag.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let guard = test_gate();
        set_enabled(true);
        reset_metrics();
        guard
    }

    #[test]
    fn property_bucket_index_is_floor_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every power of two opens its own bucket; its predecessor closes
        // the previous one.
        for shift in 1..64u32 {
            let v = 1u64 << shift;
            assert_eq!(bucket_index(v), shift as usize, "2^{shift}");
            assert_eq!(bucket_index(v - 1), shift as usize - 1, "2^{shift} - 1");
            assert_eq!(bucket_index(v + (v >> 1)), shift as usize, "1.5 * 2^{shift}");
        }
        // LCG sweep: bucket must always satisfy 2^b <= max(v,1) < 2^(b+1).
        let mut seed = 42u64;
        for _ in 0..10_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = seed;
            let b = bucket_index(v) as u32;
            assert!(1u64 << b <= v.max(1));
            assert!(b == 63 || v < 1u64 << (b + 1));
        }
    }

    #[test]
    fn counters_gate_on_enabled() {
        let _x = exclusive();
        set_enabled(false);
        counter_add(Counter::WalAppends, 3);
        set_enabled(true);
        counter_add(Counter::WalAppends, 2);
        let snap = snapshot();
        let (_, v) = snap.counters.iter().find(|(n, _)| n == "wal_appends").unwrap();
        assert_eq!(*v, 2, "only the enabled increment lands");
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let _x = exclusive();
        for v in [0, 1, 2, 3, 1024, 1500] {
            histogram_record(HistogramId::SealBatchBlocks, v);
        }
        let snap = snapshot();
        let h = snap.histograms.iter().find(|h| h.name == "seal_batch_blocks").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets, vec![(0, 2), (2, 2), (1024, 2)]);
    }

    #[test]
    fn exporters_render_counters_and_histograms() {
        let _x = exclusive();
        counter_add(Counter::OramAccesses, 7);
        histogram_record(HistogramId::StatementNanos, 900);
        let mut snap = snapshot();
        snap.push_counter("host.crossings", 11);
        let text = snap.to_text();
        assert!(text.contains("oram_accesses 7"));
        assert!(text.contains("host.crossings 11"));
        assert!(text.contains("statement_nanos count=1 ge512=1"));
        let json = snap.to_json();
        assert!(json.contains("\"oram_accesses\": 7"));
        assert!(json.contains("\"host.crossings\": 11"));
        assert!(
            json.contains("\"name\": \"statement_nanos\", \"count\": 1, \"buckets\": [[512, 1]]")
        );
    }
}
