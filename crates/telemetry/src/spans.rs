//! Hierarchical spans over a monotonic clock and a fixed-capacity ring.
//!
//! A span is opened with [`span`] and closed by dropping the returned
//! [`SpanGuard`] (RAII, so early returns and `?` close it too). Parent /
//! child linkage comes from a per-thread stack of open span ids; records
//! land in one process-wide ring buffer whose storage is allocated once,
//! the first time telemetry is enabled — after that, recording a span is
//! a clock read, a mutex lock, and a slot overwrite. When the ring wraps,
//! the oldest records are overwritten and counted in [`dropped_spans`].

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Capacity of the span ring buffer, in records. Fixed so enabling
/// telemetry costs exactly one allocation, ever.
pub const RING_CAPACITY: usize = 4096;

/// Maximum tracked span nesting depth per thread; deeper spans still
/// record but attach to the deepest tracked ancestor.
const MAX_DEPTH: usize = 64;

/// The single flag every recording entry point branches on.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonically increasing span id source (0 is reserved for "no span").
static NEXT_ID: AtomicU32 = AtomicU32::new(1);

/// Process epoch for span timestamps.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The ring; `None` until telemetry is first enabled.
static RING: Mutex<Option<Ring>> = Mutex::new(None);

thread_local! {
    static STACK: std::cell::RefCell<SpanStack> =
        const { std::cell::RefCell::new(SpanStack { ids: [0; MAX_DEPTH], depth: 0 }) };
}

struct SpanStack {
    ids: [u32; MAX_DEPTH],
    depth: usize,
}

struct Ring {
    buf: Vec<SpanRecord>,
    /// Next slot to write (wraps).
    next: usize,
    /// Live records (saturates at capacity).
    len: usize,
    /// Records overwritten since the last [`take_spans`].
    dropped: u64,
}

/// What a span measured — every instrumented site in the stack, named so
/// records stay `Copy` and the ring never stores heap strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// `Database::prepare`: parse + plan (or plan-cache hit).
    Prepare,
    /// Physical plan construction, including planner dry-runs.
    Plan,
    /// `run_plan`: one statement end to end.
    Run,
    /// Small select (all rows fit the enclave working set).
    SelectSmall,
    /// Large select (two-pass, output region).
    SelectLarge,
    /// Continuous select (contiguous match range).
    SelectContinuous,
    /// Hash select.
    SelectHash,
    /// Naive per-row select baseline.
    SelectNaive,
    /// Padded select (fixed output size).
    SelectPadded,
    /// Join operator (hash / opaque / zero-OM).
    Join,
    /// Scalar aggregation.
    Aggregate,
    /// Grouped aggregation.
    GroupBy,
    /// Oblivious (bitonic) sort.
    Sort,
    /// `SealedRegion` batch seal (AEAD encrypt of N blocks).
    SealBatch,
    /// `SealedRegion` batch open (AEAD decrypt of N blocks).
    OpenBatch,
    /// One Path ORAM access (path fetch + evict).
    OramPath,
    /// One WAL record append.
    WalAppend,
    /// WAL recovery scan of a persisted region.
    WalRecovery,
    /// One `ThreadPool` worker job.
    Worker,
    /// Replay of recovered statements into a reopened database.
    Recovery,
    /// One epoch close: commit marker append plus the group fsync.
    Epoch,
    /// One transaction commit: validate + apply the buffered batch.
    TxnCommit,
}

impl SpanKind {
    /// Stable label for exporters and tests.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Prepare => "prepare",
            SpanKind::Plan => "plan",
            SpanKind::Run => "run",
            SpanKind::SelectSmall => "select.small",
            SpanKind::SelectLarge => "select.large",
            SpanKind::SelectContinuous => "select.continuous",
            SpanKind::SelectHash => "select.hash",
            SpanKind::SelectNaive => "select.naive",
            SpanKind::SelectPadded => "select.padded",
            SpanKind::Join => "join",
            SpanKind::Aggregate => "aggregate",
            SpanKind::GroupBy => "group_by",
            SpanKind::Sort => "sort",
            SpanKind::SealBatch => "seal_batch",
            SpanKind::OpenBatch => "open_batch",
            SpanKind::OramPath => "oram.path",
            SpanKind::WalAppend => "wal.append",
            SpanKind::WalRecovery => "wal.recovery",
            SpanKind::Worker => "pool.worker",
            SpanKind::Recovery => "recovery",
            SpanKind::Epoch => "epoch",
            SpanKind::TxnCommit => "txn.commit",
        }
    }
}

/// One completed span, as stored in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// What was measured.
    pub kind: SpanKind,
    /// Nanoseconds since the process telemetry epoch at span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Id of the enclosing span on the same thread (0 = root).
    pub parent: u32,
    /// This span's id (unique per process run, never 0).
    pub id: u32,
}

/// A live span; dropping it records the [`SpanRecord`]. When telemetry
/// is disabled, construction and drop are each a single branch.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    kind: SpanKind,
    start_ns: u64,
    id: u32,
    parent: u32,
}

/// Globally enables or disables span + metric recording. The first
/// enable allocates the ring buffer (the one-time allocation documented
/// at the crate root); disabling keeps the ring and its records.
pub fn set_enabled(on: bool) {
    if on {
        let mut guard = RING.lock().expect("telemetry ring poisoned");
        if guard.is_none() {
            *guard =
                Some(Ring { buf: Vec::with_capacity(RING_CAPACITY), next: 0, len: 0, dropped: 0 });
        }
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled — the single branch every
/// hot-path entry point takes.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Opens a span of `kind`. Disabled telemetry returns an inert guard
/// after one branch; enabled telemetry reads the clock, assigns an id,
/// and pushes onto the calling thread's span stack.
#[inline]
pub fn span(kind: SpanKind) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let id = {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        if id == 0 {
            NEXT_ID.fetch_add(1, Ordering::Relaxed)
        } else {
            id
        }
    };
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let depth = s.depth;
        let parent = if depth == 0 { 0 } else { s.ids[depth.min(MAX_DEPTH) - 1] };
        if depth < MAX_DEPTH {
            s.ids[depth] = id;
        }
        s.depth += 1;
        parent
    });
    SpanGuard { active: Some(ActiveSpan { kind, start_ns: now_ns(), id, parent }) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.depth = s.depth.saturating_sub(1);
        });
        let record = SpanRecord {
            kind: active.kind,
            start_ns: active.start_ns,
            dur_ns: now_ns().saturating_sub(active.start_ns),
            parent: active.parent,
            id: active.id,
        };
        let mut guard = RING.lock().expect("telemetry ring poisoned");
        if let Some(ring) = guard.as_mut() {
            if ring.buf.len() < RING_CAPACITY {
                ring.buf.push(record);
            } else {
                ring.buf[ring.next] = record;
                ring.dropped += 1;
            }
            ring.next = (ring.next + 1) % RING_CAPACITY;
            ring.len = (ring.len + 1).min(RING_CAPACITY);
        }
    }
}

/// Drains every recorded span, oldest first, and resets the ring. An
/// export boundary point — see the crate-level leakage rationale.
pub fn take_spans() -> Vec<SpanRecord> {
    let mut guard = RING.lock().expect("telemetry ring poisoned");
    let Some(ring) = guard.as_mut() else { return Vec::new() };
    let mut out = Vec::with_capacity(ring.len);
    if ring.buf.len() < RING_CAPACITY {
        out.extend_from_slice(&ring.buf);
    } else {
        out.extend_from_slice(&ring.buf[ring.next..]);
        out.extend_from_slice(&ring.buf[..ring.next]);
    }
    ring.buf.clear();
    ring.next = 0;
    ring.len = 0;
    ring.dropped = 0;
    out
}

/// Spans overwritten by ring wraparound since the last [`take_spans`].
pub fn dropped_spans() -> u64 {
    RING.lock().expect("telemetry ring poisoned").as_ref().map_or(0, |r| r.dropped)
}

/// Serializes tests that touch the process-global enable flag, ring, or
/// metrics registry (they would race across test threads otherwise).
#[cfg(test)]
pub(crate) fn test_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span tests share the process-global ring, so they serialize on
    /// one lock and drain the ring at entry.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let guard = test_gate();
        set_enabled(true);
        let _ = take_spans();
        guard
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _x = exclusive();
        set_enabled(false);
        {
            let _g = span(SpanKind::Run);
        }
        set_enabled(true);
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nesting_links_parent_and_child() {
        let _x = exclusive();
        {
            let _outer = span(SpanKind::Run);
            {
                let _inner = span(SpanKind::Join);
                let _leaf = span(SpanKind::SealBatch);
            }
        }
        let spans = take_spans();
        assert_eq!(spans.len(), 3);
        // Drop order: leaf, inner, outer.
        let (leaf, inner, outer) = (spans[0], spans[1], spans[2]);
        assert_eq!(outer.kind, SpanKind::Run);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(leaf.parent, inner.id);
        assert!(leaf.start_ns >= inner.start_ns);
        assert!(inner.dur_ns <= outer.dur_ns, "a nested span cannot outlast its parent");
    }

    #[test]
    fn property_nesting_depth_always_links_to_enclosing_span() {
        let _x = exclusive();
        // Pseudo-random nesting depths from a fixed LCG; every record's
        // parent must be the id of the span opened just before it on the
        // same thread.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..50 {
            let depth = rand() % 8 + 1;
            let mut guards = Vec::new();
            for _ in 0..depth {
                guards.push(span(SpanKind::Worker));
            }
            // Drop innermost-first, as RAII scoping would.
            while guards.pop().is_some() {}
            let spans = take_spans();
            assert_eq!(spans.len(), depth);
            // spans[i] closed before spans[i+1]; spans[depth-1] is the root.
            assert_eq!(spans[depth - 1].parent, 0);
            for i in 0..depth - 1 {
                assert_eq!(spans[i].parent, spans[i + 1].id, "child links to enclosing span");
            }
        }
    }

    #[test]
    fn property_ring_wraparound_keeps_newest_and_counts_dropped() {
        let _x = exclusive();
        let total = RING_CAPACITY + 117;
        for _ in 0..total {
            let _g = span(SpanKind::WalAppend);
        }
        assert_eq!(dropped_spans(), (total - RING_CAPACITY) as u64);
        let spans = take_spans();
        assert_eq!(spans.len(), RING_CAPACITY, "ring keeps exactly its capacity");
        // Oldest-first drain: timestamps must be non-decreasing across the
        // wrap seam, proving the drain reassembled the circle correctly.
        for pair in spans.windows(2) {
            assert!(pair[0].start_ns <= pair[1].start_ns, "drain is chronological");
        }
        assert_eq!(dropped_spans(), 0, "drain resets the dropped count");
    }

    #[test]
    fn deep_nesting_saturates_stack_without_losing_records() {
        let _x = exclusive();
        let mut guards = Vec::new();
        for _ in 0..MAX_DEPTH + 10 {
            guards.push(span(SpanKind::Worker));
        }
        while guards.pop().is_some() {}
        assert_eq!(take_spans().len(), MAX_DEPTH + 10);
    }
}
