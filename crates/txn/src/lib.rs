//! Epoch-based transactions over a shared ObliDB engine.
//!
//! ObliDB's paper leaves transactions out of scope; Obladi (OSDI 2018)
//! showed how to put ACID transactions *on top* of oblivious storage
//! without new leakage: buffer each transaction's writes outside the
//! oblivious store, commit in fixed **epochs**, and pay one durability
//! flush per epoch instead of per statement. This crate is that layer
//! for ObliDB:
//!
//! * [`TxnSession`] wraps a [`Session`] with `BEGIN` / `COMMIT` /
//!   `ROLLBACK`. Mutations inside a transaction are buffered client-side
//!   (inside the enclave, never visible to the host) and applied at
//!   `COMMIT` through [`SharedDatabase::execute_atomic`] — one
//!   write-latch hold, so concurrent snapshot readers observe the
//!   transaction all-or-nothing. `ROLLBACK` (or dropping the session
//!   mid-transaction) discards the buffer; nothing to undo, because
//!   nothing ran.
//! * [`TxnManager`] owns the **epoch scheduler**: with
//!   [`EpochConfig`] the engine pools every committed statement's WAL
//!   record into an open epoch ([`oblidb_core::wal`] record kinds), and
//!   the manager closes the epoch — one commit marker, one group
//!   `sync_region` fsync — when the window elapses or enough statements
//!   pool. Recovery replays whole epochs or none, so a crash lands
//!   exactly on an epoch boundary.
//! * [`EpochFlusher`] is the background ticker that closes epochs on
//!   time even when no new statement arrives.
//!
//! Leakage: buffering adds *nothing* for the adversary — a transaction's
//! statements execute back-to-back at commit with the same per-statement
//! traces a serial schedule produces (the conformance suite asserts
//! trace equality against serial execution). The epoch scheduler only
//! *removes* observable events (fewer fsyncs); epoch boundaries reveal
//! commit timing, which per-statement fsyncs revealed more of.
//!
//! Isolation: reads inside an open transaction run against the shared
//! snapshot state and do **not** see the transaction's own buffered
//! writes (no read-your-writes); the write set becomes visible to
//! everyone atomically at commit. This is the Obladi client model —
//! transactions are write-buffered, not workspace-isolated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use oblidb_core::sql::{self, Statement};
use oblidb_core::{DbError, EpochConfig, QueryOutput, Session, SessionStats, SharedDatabase};
use oblidb_enclave::EnclaveMemory;

/// What one [`TxnSession::execute`] call did.
#[derive(Debug)]
pub enum TxnOutcome {
    /// The statement ran (autocommit, or a read inside a transaction);
    /// here is its result.
    Statement(QueryOutput),
    /// A transaction is open and the mutation was buffered; it runs at
    /// `COMMIT`.
    Buffered,
    /// `BEGIN` opened a transaction.
    Begun,
    /// `COMMIT` applied the buffer atomically.
    Committed {
        /// Statements the transaction applied.
        statements: u64,
    },
    /// `ROLLBACK` discarded the buffer.
    RolledBack {
        /// Statements the transaction discarded.
        statements: u64,
    },
}

struct EpochState {
    /// When the current epoch window opened.
    opened_at: Instant,
    /// Statements applied into the open epoch since the last flush.
    pending: u64,
}

struct Inner<M: EnclaveMemory + Send> {
    db: SharedDatabase<M>,
    epoch: Option<EpochConfig>,
    state: Mutex<EpochState>,
}

/// The epoch scheduler: owns when group commits happen. Cloneable and
/// `Send + Sync`; mint per-connection [`TxnSession`]s with
/// [`TxnManager::session`].
pub struct TxnManager<M: EnclaveMemory + Send = oblidb_enclave::Host> {
    inner: Arc<Inner<M>>,
}

impl<M: EnclaveMemory + Send> Clone for TxnManager<M> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<M: EnclaveMemory + Send> TxnManager<M> {
    /// Wraps a shared engine. `epoch: Some` must match the engine's
    /// [`oblidb_core::DbConfig::epoch`] — the engine pools WAL records,
    /// this manager closes them; `None` leaves per-statement durability
    /// untouched and the manager degenerates to a plain session factory.
    pub fn new(db: SharedDatabase<M>, epoch: Option<EpochConfig>) -> Self {
        TxnManager {
            inner: Arc::new(Inner {
                db,
                epoch,
                state: Mutex::new(EpochState { opened_at: Instant::now(), pending: 0 }),
            }),
        }
    }

    /// The shared engine underneath.
    pub fn db(&self) -> &SharedDatabase<M> {
        &self.inner.db
    }

    /// The epoch configuration this manager schedules under.
    pub fn epoch(&self) -> Option<EpochConfig> {
        self.inner.epoch
    }

    /// Mints a transaction-capable session.
    pub fn session(&self) -> TxnSession<M> {
        TxnSession { session: self.inner.db.session(), manager: self.clone(), buffer: None }
    }

    /// Closes the open epoch now: one commit marker, one group fsync.
    /// Returns how many statements it sealed. Callers hand the store off
    /// (shutdown, checkpoint) through this so the log never ends
    /// mid-epoch.
    pub fn flush(&self) -> Result<u64, DbError> {
        {
            let mut state = self.lock_state();
            state.pending = 0;
            state.opened_at = Instant::now();
        }
        // The state lock is released before taking the engine latch
        // (admin): lock order is always state → latch, never both held.
        // A racing flush is harmless — commit_epoch no-ops on a boundary.
        self.inner.db.admin(|engine| engine.commit_epoch())
    }

    /// Notes that `applied` statements just committed into the open
    /// epoch, and closes it early when the statement cap is hit. Called
    /// by sessions after every applied mutation.
    fn note_applied(&self, applied: u64) -> Result<u64, DbError> {
        let Some(cfg) = self.inner.epoch else { return Ok(0) };
        let due = {
            let mut state = self.lock_state();
            state.pending += applied;
            state.pending >= cfg.max_statements as u64
        };
        if due {
            self.flush()
        } else {
            Ok(0)
        }
    }

    /// Closes the open epoch if its time window has elapsed (and it has
    /// anything pending). The background [`EpochFlusher`] drives this.
    pub fn flush_if_due(&self) -> Result<u64, DbError> {
        let Some(cfg) = self.inner.epoch else { return Ok(0) };
        let due = {
            let state = self.lock_state();
            state.pending > 0
                && state.opened_at.elapsed() >= std::time::Duration::from_millis(cfg.duration_ms)
        };
        if due {
            self.flush()
        } else {
            Ok(0)
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, EpochState> {
        self.inner.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Spawns the background epoch ticker: closes epochs on time even
    /// when no statement arrives to trip the cap. Stops (and joins) on
    /// drop of the returned handle.
    pub fn spawn_flusher(&self) -> EpochFlusher
    where
        M: 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let manager = self.clone();
        let tick =
            std::time::Duration::from_millis(self.inner.epoch.map_or(5, |e| e.duration_ms.max(1)));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("oblidb-epoch-flusher".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    // Store-level I/O errors resurface on the next
                    // statement; the ticker itself has nowhere to report.
                    let _ = manager.flush_if_due();
                }
            })
            .expect("spawn epoch flusher");
        EpochFlusher { stop, handle: Some(handle) }
    }
}

/// Background epoch ticker handle — stops and joins its thread on drop.
pub struct EpochFlusher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for EpochFlusher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A transaction-capable session: understands `BEGIN` / `COMMIT` /
/// `ROLLBACK` (and their wire-protocol verbs) on top of everything a
/// plain [`Session`] executes.
pub struct TxnSession<M: EnclaveMemory + Send = oblidb_enclave::Host> {
    session: Session<M>,
    manager: TxnManager<M>,
    /// `Some` while a transaction is open: the buffered mutation
    /// statements, in arrival order.
    buffer: Option<Vec<String>>,
}

impl<M: EnclaveMemory + Send> TxnSession<M> {
    /// Whether a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.buffer.is_some()
    }

    /// This session's statement counters.
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// The shared engine underneath (for metrics snapshots).
    pub fn database(&self) -> &SharedDatabase<M> {
        self.manager.db()
    }

    /// Opens a transaction. Statements until `COMMIT` / `ROLLBACK`
    /// buffer client-side; reads keep executing against shared state.
    pub fn begin(&mut self) -> Result<TxnOutcome, DbError> {
        if self.buffer.is_some() {
            return Err(DbError::Unsupported(
                "BEGIN inside an open transaction (no nesting)".into(),
            ));
        }
        self.buffer = Some(Vec::new());
        Ok(TxnOutcome::Begun)
    }

    /// Applies the open transaction's buffer atomically. On a rejected
    /// batch (validation or execution error) the transaction aborts:
    /// the buffer is discarded and the error returned — deterministic,
    /// because validation runs before the first statement executes.
    pub fn commit(&mut self) -> Result<TxnOutcome, DbError> {
        let Some(statements) = self.buffer.take() else {
            return Err(DbError::Unsupported("COMMIT without an open transaction".into()));
        };
        let n = statements.len() as u64;
        if statements.is_empty() {
            oblidb_telemetry::counter_add(oblidb_telemetry::Counter::TxnCommits, 1);
            return Ok(TxnOutcome::Committed { statements: 0 });
        }
        let _span = oblidb_telemetry::span(oblidb_telemetry::SpanKind::TxnCommit);
        match self.manager.db().execute_atomic(&statements) {
            Ok(_) => {
                oblidb_telemetry::counter_add(oblidb_telemetry::Counter::TxnCommits, 1);
                self.manager.note_applied(n)?;
                Ok(TxnOutcome::Committed { statements: n })
            }
            Err(e) => {
                oblidb_telemetry::counter_add(oblidb_telemetry::Counter::TxnAborts, 1);
                Err(e)
            }
        }
    }

    /// Discards the open transaction's buffer.
    pub fn rollback(&mut self) -> Result<TxnOutcome, DbError> {
        let Some(statements) = self.buffer.take() else {
            return Err(DbError::Unsupported("ROLLBACK without an open transaction".into()));
        };
        oblidb_telemetry::counter_add(oblidb_telemetry::Counter::TxnAborts, 1);
        Ok(TxnOutcome::RolledBack { statements: statements.len() as u64 })
    }

    /// Executes one SQL statement with transaction semantics:
    ///
    /// * `BEGIN` / `COMMIT` / `ROLLBACK` control the buffer;
    /// * inside a transaction, mutations buffer ([`TxnOutcome::Buffered`])
    ///   and reads run against shared snapshot state;
    /// * outside one, everything autocommits exactly like
    ///   [`Session::execute`] — and, under an epoch scheduler, joins the
    ///   open epoch's group fsync.
    pub fn execute(&mut self, sql_text: &str) -> Result<TxnOutcome, DbError> {
        match sql::parse(sql_text)? {
            Statement::Begin => self.begin(),
            Statement::Commit => self.commit(),
            Statement::Rollback => self.rollback(),
            Statement::Create(_)
            | Statement::Insert(_)
            | Statement::Update(_)
            | Statement::Delete(_)
                if self.buffer.is_some() =>
            {
                self.buffer.as_mut().expect("checked").push(sql_text.to_string());
                Ok(TxnOutcome::Buffered)
            }
            stmt => {
                let mutation = matches!(
                    stmt,
                    Statement::Create(_)
                        | Statement::Insert(_)
                        | Statement::Update(_)
                        | Statement::Delete(_)
                );
                let out = self.session.execute(sql_text)?;
                if mutation {
                    self.manager.note_applied(1)?;
                }
                Ok(TxnOutcome::Statement(out))
            }
        }
    }
}

impl<M: EnclaveMemory + Send> Drop for TxnSession<M> {
    fn drop(&mut self) {
        // A connection dying mid-transaction aborts it — the buffer
        // simply evaporates; nothing ran, nothing to undo.
        if self.buffer.take().is_some_and(|b| !b.is_empty()) {
            oblidb_telemetry::counter_add(oblidb_telemetry::Counter::TxnAborts, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oblidb_core::{DbConfig, Value, WalConfig};
    use oblidb_enclave::Host;

    fn manager(epoch: Option<EpochConfig>) -> TxnManager {
        let config = DbConfig { wal: Some(WalConfig::default()), epoch, ..DbConfig::default() };
        TxnManager::new(SharedDatabase::new(Host::new(), config).unwrap(), epoch)
    }

    fn rows(out: &TxnOutcome) -> Vec<Vec<Value>> {
        match out {
            TxnOutcome::Statement(q) => q.rows().to_vec(),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn commit_applies_buffer_atomically() {
        let mgr = manager(None);
        let mut s = mgr.session();
        s.execute("CREATE TABLE t (id INT, v INT)").unwrap();
        assert!(matches!(s.execute("BEGIN").unwrap(), TxnOutcome::Begun));
        assert!(matches!(s.execute("INSERT INTO t VALUES (1, 10)").unwrap(), TxnOutcome::Buffered));
        assert!(matches!(s.execute("INSERT INTO t VALUES (2, 20)").unwrap(), TxnOutcome::Buffered));
        // Buffered writes are invisible before commit (no read-your-writes).
        assert!(rows(&s.execute("SELECT * FROM t").unwrap()).is_empty());
        assert!(matches!(s.execute("COMMIT").unwrap(), TxnOutcome::Committed { statements: 2 }));
        assert_eq!(rows(&s.execute("SELECT * FROM t").unwrap()).len(), 2);
    }

    #[test]
    fn rollback_discards_buffer() {
        let mgr = manager(None);
        let mut s = mgr.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        assert!(matches!(s.execute("ROLLBACK").unwrap(), TxnOutcome::RolledBack { statements: 1 }));
        assert!(rows(&s.execute("SELECT * FROM t").unwrap()).is_empty());
        assert!(!s.in_txn());
    }

    #[test]
    fn failed_commit_aborts_cleanly() {
        let mgr = manager(None);
        let mut s = mgr.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        // Type mismatch: validation rejects the whole batch before the
        // first insert runs.
        s.execute("INSERT INTO t VALUES ('nope')").unwrap();
        assert!(s.execute("COMMIT").is_err());
        assert!(!s.in_txn(), "a failed commit ends the transaction");
        assert!(rows(&s.execute("SELECT * FROM t").unwrap()).is_empty());
    }

    #[test]
    fn txn_control_outside_txn_rejected() {
        let mgr = manager(None);
        let mut s = mgr.session();
        assert!(s.execute("COMMIT").is_err());
        assert!(s.execute("ROLLBACK").is_err());
        s.execute("BEGIN").unwrap();
        assert!(s.execute("BEGIN").is_err(), "no nested transactions");
    }

    #[test]
    fn epoch_cap_triggers_group_flush() {
        let cfg = EpochConfig { duration_ms: 60_000, max_statements: 4 };
        let mgr = manager(Some(cfg));
        let mut s = mgr.session();
        s.execute("CREATE TABLE t (id INT)").unwrap();
        for i in 0..3 {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        // CREATE + 3 inserts crossed the 4-statement cap, so the epoch
        // closed at least once; whatever remains flushes on demand.
        mgr.flush().unwrap();
        assert_eq!(mgr.db().admin(|e| e.epoch_pending()), 0);
        // Every applied statement survives in the committed log.
        let records = mgr.db().admin(|e| e.wal_records()).unwrap();
        assert_eq!(records.len(), 4);
    }
}
