//! The Big Data Benchmark tables and queries (paper Figure 6, §7.1).
//!
//! The original AMPLab data is not redistributable offline, so this module
//! generates deterministic synthetic tables with the same schemas, row
//! counts, and — what the evaluation actually depends on — the same query
//! selectivities (see DESIGN.md §2):
//!
//! * RANKINGS (360 000 rows): `pageURL, pageRank, avgDuration`;
//!   Q1's `pageRank > 1000` matches ≈ 0.25 % of rows (the BDB "tiny"
//!   dataset's selectivity at X = 1000 — small enough that an index wins,
//!   which is exactly what Figure 7's 19× speedup shows; Figure 10 puts
//!   the flat/index crossover near 2 %).
//! * USERVISITS (350 000 rows): `sourceIP, ipPrefix8, destURL, visitDate,
//!   adRevenue`; Q3's date cutoff (1980-04-01) keeps ≈ ⅓ of rows, and every
//!   `destURL` references a RANKINGS `pageURL` (foreign-key join).
//!
//! `ipPrefix8` pre-computes `SUBSTR(sourceIP, 1, 8)` — Q2's group key —
//! since the engine's SQL subset has no string functions.

use crate::rng::StdRng;
use oblidb_core::types::{Column, DataType, Schema, Value};

/// Paper row count for RANKINGS.
pub const RANKINGS_ROWS: usize = 360_000;
/// Paper row count for USERVISITS.
pub const USERVISITS_ROWS: usize = 350_000;

/// Q1's selection parameter ("1000, 8, and 1980-04-01 are the parameters").
pub const Q1_PAGERANK_CUTOFF: i64 = 1000;
/// Q3's date parameter as days since 1970-01-01 (1980-04-01).
pub const Q3_DATE_CUTOFF: i64 = 3743;

/// RANKINGS schema.
pub fn rankings_schema() -> Schema {
    Schema::new(vec![
        Column::new("pageURL", DataType::Text(32)),
        Column::new("pageRank", DataType::Int),
        Column::new("avgDuration", DataType::Int),
    ])
}

/// USERVISITS schema.
pub fn uservisits_schema() -> Schema {
    Schema::new(vec![
        Column::new("sourceIP", DataType::Text(16)),
        Column::new("ipPrefix8", DataType::Text(8)),
        Column::new("destURL", DataType::Text(32)),
        Column::new("visitDate", DataType::Int),
        Column::new("adRevenue", DataType::Float),
    ])
}

fn url(i: usize) -> String {
    format!("url{i:027}")
}

/// Generates `n` RANKINGS rows. ≈ 0.25 % of ranks exceed
/// [`Q1_PAGERANK_CUTOFF`], matching the selectivity Q1 (X = 1000) has on
/// the BDB "tiny" dataset the paper evaluates.
pub fn rankings(n: usize, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            // 0.25% of pages get a high rank (> 1000), the rest low.
            let rank = if rng.random_range(0..10_000) < 25 {
                rng.random_range(1001..11000)
            } else {
                rng.random_range(1..=1000)
            };
            vec![Value::Text(url(i)), Value::Int(rank), Value::Int(rng.random_range(1..60))]
        })
        .collect()
}

/// Generates `n` USERVISITS rows referencing `rankings_n` pages.
pub fn uservisits(n: usize, rankings_n: usize, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBDB);
    (0..n)
        .map(|_| {
            let ip: String = format!(
                "{}.{}.{}.{}",
                rng.random_range(10..250),
                rng.random_range(10..250),
                rng.random_range(10..250),
                rng.random_range(10..250)
            );
            let prefix: String = ip.chars().take(8).collect();
            let dest = url(rng.random_range(0..rankings_n as u64) as usize);
            // Dates uniform over 1970..2000 → ~34% before 1980-04-01.
            let date = rng.random_range(0..10_957);
            let revenue = rng.random_range(0.0..1000.0f64);
            vec![
                Value::Text(ip),
                Value::Text(prefix),
                Value::Text(dest),
                Value::Int(date),
                Value::Float(revenue),
            ]
        })
        .collect()
}

/// Query 1 of the benchmark (selection):
/// `SELECT pageURL, pageRank FROM rankings WHERE pageRank > 1000`.
pub fn q1_sql() -> String {
    format!("SELECT pageURL, pageRank FROM rankings WHERE pageRank > {Q1_PAGERANK_CUTOFF}")
}

/// Query 2 (grouped aggregation):
/// `SELECT SUBSTR(sourceIP,1,8), SUM(adRevenue) FROM uservisits GROUP BY 1`.
pub fn q2_sql() -> String {
    "SELECT ipPrefix8, SUM(adRevenue) FROM uservisits GROUP BY ipPrefix8".to_string()
}

/// Query 3 (join + filter + aggregate): revenue-weighted page rank over
/// visits before the date cutoff.
pub fn q3_sql() -> String {
    format!(
        "SELECT AVG(pageRank), SUM(adRevenue) FROM rankings \
         JOIN uservisits ON rankings.pageURL = uservisits.destURL \
         WHERE visitDate < {Q3_DATE_CUTOFF}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        assert_eq!(rankings(100, 1), rankings(100, 1));
        assert_ne!(rankings(100, 1), rankings(100, 2));
    }

    #[test]
    fn q1_selectivity_close_to_bdb() {
        let rows = rankings(100_000, 7);
        let hits = rows.iter().filter(|r| r[1].as_int().unwrap() > Q1_PAGERANK_CUTOFF).count();
        let frac = hits as f64 / rows.len() as f64;
        assert!((0.001..0.005).contains(&frac), "selectivity {frac}");
    }

    #[test]
    fn q3_date_selectivity_about_a_third() {
        let rows = uservisits(20_000, 1000, 7);
        let hits = rows.iter().filter(|r| r[3].as_int().unwrap() < Q3_DATE_CUTOFF).count();
        let frac = hits as f64 / rows.len() as f64;
        assert!((0.28..0.40).contains(&frac), "selectivity {frac}");
    }

    #[test]
    fn every_visit_references_a_page() {
        let visits = uservisits(1000, 50, 3);
        for v in &visits {
            let dest = v[2].as_text().unwrap();
            let idx: usize = dest.trim_start_matches("url").parse().unwrap();
            assert!(idx < 50);
        }
    }

    #[test]
    fn rows_fit_schemas() {
        let rs = rankings_schema();
        for r in rankings(50, 1) {
            rs.encode_row(&r).unwrap();
        }
        let us = uservisits_schema();
        for v in uservisits(50, 50, 1) {
            us.encode_row(&v).unwrap();
        }
    }

    #[test]
    fn prefix_is_substr_8() {
        for v in uservisits(200, 50, 9) {
            let ip = v[0].as_text().unwrap();
            let prefix = v[1].as_text().unwrap();
            let expect: String = ip.chars().take(8).collect();
            assert_eq!(prefix, expect);
        }
    }
}
