//! The CFPB consumer-complaints table used by the padding-mode experiment
//! (paper §7.2, "Impact of padding mode"): 107 000 rows, padded to 200 000.

use crate::rng::StdRng;
use oblidb_core::types::{Column, DataType, Schema, Value};

/// Paper row count.
pub const CFPB_ROWS: usize = 107_000;
/// Paper padding bound.
pub const CFPB_PAD: u64 = 200_000;

/// Complaint-table schema (compact synthetic rendition).
pub fn schema() -> Schema {
    Schema::new(vec![
        Column::new("complaintId", DataType::Int),
        Column::new("product", DataType::Int),
        Column::new("state", DataType::Text(2)),
        Column::new("year", DataType::Int),
        Column::new("disputed", DataType::Int),
    ])
}

const STATES: [&str; 12] = ["CA", "TX", "NY", "FL", "IL", "PA", "OH", "GA", "NC", "MI", "WA", "MA"];

/// Generates `n` complaint rows.
pub fn complaints(n: usize, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCF9B);
    (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.random_range(0..18)),
                Value::Text(STATES[rng.random_range(0..STATES.len() as u64) as usize].into()),
                Value::Int(rng.random_range(2012..2019)),
                Value::Int(rng.random_range(0..2)),
            ]
        })
        .collect()
}

/// The aggregate query measured under padding (grouped aggregation).
pub fn aggregate_sql() -> &'static str {
    "SELECT product, COUNT(*) FROM complaints GROUP BY product"
}

/// The selection query measured under padding.
pub fn select_sql() -> &'static str {
    "SELECT * FROM complaints WHERE year = 2015"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_fit_schema() {
        let s = schema();
        for r in complaints(100, 1) {
            s.encode_row(&r).unwrap();
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(complaints(50, 3), complaints(50, 3));
    }
}
