//! Deterministic workload generators for the ObliDB evaluation.
//!
//! * [`bdb`] — the Big Data Benchmark tables (RANKINGS 360 k rows,
//!   USERVISITS 350 k rows; paper Figure 6) and queries Q1–Q3.
//! * [`cfpb`] — the 107 k-row complaints table used for the padding-mode
//!   experiment (§7.1).
//! * [`mixes`] — the L1–L5 mixed read/write workloads of Figure 12.
//! * [`synthetic`] — parameterized tables with controllable selectivity for
//!   the microbenchmarks (Figures 10, 11, 13, 14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rng;

pub mod bdb;
pub mod cfpb;
pub mod mixes;
pub mod synthetic;
