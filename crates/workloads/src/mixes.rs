//! The mixed workloads L1–L5 of paper Figure 12.
//!
//! | Workload | Point reads | Small reads | Large reads | Inserts | Deletes |
//! |----------|------------|-------------|-------------|---------|---------|
//! | L1       | 5 %        | 0 %         | 5 %         | 90 %    | 0 %     |
//! | L2       | 0 %        | 90 %        | 0 %         | 9 %     | 1 %     |
//! | L3       | 50 %       | 0 %         | 50 %        | 0 %     | 0 %     |
//! | L4       | 45 %       | 0 %         | 45 %        | 5 %     | 5 %     |
//! | L5       | 0 %        | 0 %         | 90 %        | 5 %     | 5 %     |
//!
//! "Point reads access 1 row, small reads access 50, and large reads
//! access 5% of the table."

use crate::rng::StdRng;

/// One operation in a mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixOp {
    /// Read one row by key.
    PointRead {
        /// Key to look up.
        key: i64,
    },
    /// Read a 50-row key range.
    SmallRead {
        /// Range start.
        lo: i64,
    },
    /// Read 5 % of the table (a contiguous key range).
    LargeRead {
        /// Range start.
        lo: i64,
    },
    /// Insert a fresh row.
    Insert {
        /// New key.
        key: i64,
    },
    /// Delete an existing row.
    Delete {
        /// Victim key.
        key: i64,
    },
}

/// The five workload mixes: percentages of
/// (point, small, large, insert, delete), per Figure 12.
pub const MIXES: [(&str, [u32; 5]); 5] = [
    ("L1", [5, 0, 5, 90, 0]),
    ("L2", [0, 90, 0, 9, 1]),
    ("L3", [50, 0, 50, 0, 0]),
    ("L4", [45, 0, 45, 5, 5]),
    ("L5", [0, 0, 90, 5, 5]),
];

/// Small reads access this many rows (paper Figure 12 caption).
pub const SMALL_READ_ROWS: i64 = 50;

/// Generates `ops` operations of mix `mix_name` against a table whose keys
/// initially span `[0, table_rows)`.
pub fn generate(mix_name: &str, table_rows: i64, ops: usize, seed: u64) -> Vec<MixOp> {
    let (_, pct) = MIXES
        .iter()
        .find(|(n, _)| *n == mix_name)
        .unwrap_or_else(|| panic!("unknown mix {mix_name}"));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x111);
    let large = (table_rows / 20).max(1);
    let mut next_key = table_rows;
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        let roll = rng.random_range(0..100u32);
        let op = if roll < pct[0] {
            MixOp::PointRead { key: rng.random_range(0..table_rows as u64) as i64 }
        } else if roll < pct[0] + pct[1] {
            let lo = rng.random_range(0..(table_rows - SMALL_READ_ROWS).max(1) as u64) as i64;
            MixOp::SmallRead { lo }
        } else if roll < pct[0] + pct[1] + pct[2] {
            let lo = rng.random_range(0..(table_rows - large).max(1) as u64) as i64;
            MixOp::LargeRead { lo }
        } else if roll < pct[0] + pct[1] + pct[2] + pct[3] {
            next_key += 1;
            MixOp::Insert { key: next_key }
        } else {
            MixOp::Delete { key: rng.random_range(0..table_rows as u64) as i64 }
        };
        out.push(op);
    }
    out
}

/// Rows a large read touches for a table of `table_rows`.
pub fn large_read_rows(table_rows: i64) -> i64 {
    (table_rows / 20).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_mix_percentages() {
        let ops = generate("L1", 10_000, 5_000, 1);
        let inserts = ops.iter().filter(|o| matches!(o, MixOp::Insert { .. })).count();
        let frac = inserts as f64 / ops.len() as f64;
        assert!((0.85..0.95).contains(&frac), "L1 inserts {frac}");
    }

    #[test]
    fn l3_is_read_only() {
        let ops = generate("L3", 1_000, 1_000, 2);
        assert!(ops.iter().all(|o| matches!(o, MixOp::PointRead { .. } | MixOp::LargeRead { .. })));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate("L4", 100, 50, 9), generate("L4", 100, 50, 9));
    }

    #[test]
    #[should_panic(expected = "unknown mix")]
    fn unknown_mix_panics() {
        generate("L9", 100, 10, 0);
    }
}
