//! Deterministic workload RNG.
//!
//! Wraps [`EnclaveRng`] (the workspace's only generator) with the
//! range-sampling surface the generators need. Workload data is public —
//! this is about reproducible datasets, not secrecy.

use std::ops::{Range, RangeInclusive};

use oblidb_enclave::EnclaveRng;

/// Seedable generator for workload synthesis.
pub(crate) struct StdRng {
    inner: EnclaveRng,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { inner: EnclaveRng::seed_from_u64(seed) }
    }

    /// Uniform sample from an integer or float range.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut self.inner)
    }
}

/// Ranges [`StdRng::random_range`] can sample `T` from. The output type is
/// a trait parameter (not an associated type) so integer-literal ranges
/// infer their width from the use site, as with `rand`.
pub(crate) trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut EnclaveRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut EnclaveRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut EnclaveRng) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full-width range: every 64-bit pattern is in range.
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i64, u64, i32, u32, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut EnclaveRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let v: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = r.random_range(1..=3u64);
            assert!((1..=3).contains(&w));
            let f = r.random_range(0.0..10.0f64);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_panic() {
        let mut r = StdRng::seed_from_u64(3);
        let _: u64 = r.random_range(0..=u64::MAX);
        let _: i64 = r.random_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
    }
}
