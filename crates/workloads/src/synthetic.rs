//! Parameterized synthetic tables for the microbenchmarks (Figures 10,
//! 11, 13, 14): a sequential key column, a shuffled payload column, and a
//! width filler so row sizes match realistic records.

use crate::rng::StdRng;
use oblidb_core::types::{Column, DataType, Schema, Value};

/// Schema: `id INT` (sequential, 0..n), `val INT` (uniform), `pad CHAR(w)`.
pub fn schema(pad_width: usize) -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("val", DataType::Int),
        Column::new("pad", DataType::Text(pad_width)),
    ])
}

/// Generates `n` rows. `id` is sequential so range predicates control
/// selectivity and continuity exactly; `val` is uniform in `[0, n)` so
/// equality predicates hit ≈ 1 row.
pub fn table(n: usize, pad_width: usize, seed: u64) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E7);
    (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.random_range(0..n.max(1) as u64) as i64),
                Value::Text("x".repeat(pad_width.min(4))),
            ]
        })
        .collect()
}

/// SQL for selecting a fraction of the table via a contiguous id range.
pub fn range_select_sql(n: usize, fraction: f64, from_start: bool) -> String {
    let k = ((n as f64) * fraction).round() as i64;
    if from_start {
        format!("SELECT * FROM t WHERE id < {k}")
    } else {
        let lo = n as i64 - k;
        format!("SELECT * FROM t WHERE id >= {lo}")
    }
}

/// SQL selecting the same fraction but scattered (non-contiguous): rows
/// whose `id` falls in two disjoint runs.
pub fn scattered_select_sql(n: usize, fraction: f64) -> String {
    let k = (((n as f64) * fraction).round() as i64) / 2;
    let mid = n as i64 / 2;
    format!("SELECT * FROM t WHERE id < {k} OR (id >= {mid} AND id < {})", mid + k)
}

/// Foreign-key join inputs for Figure 14: a primary table of `n1` unique
/// keys and a foreign table of `n2` rows referencing them.
pub fn fk_join_tables(n1: usize, n2: usize, seed: u64) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0E1);
    let primary = (0..n1)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.random_range(0..1000) as i64),
                Value::Text("p".into()),
            ]
        })
        .collect();
    let foreign = (0..n2)
        .map(|_| {
            vec![
                Value::Int(rng.random_range(0..n1 as u64) as i64),
                Value::Int(rng.random_range(0..1000) as i64),
                Value::Text("f".into()),
            ]
        })
        .collect();
    (primary, foreign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential() {
        let rows = table(100, 8, 1);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn range_sql_selects_expected_fraction() {
        let sql = range_select_sql(1000, 0.05, true);
        assert_eq!(sql, "SELECT * FROM t WHERE id < 50");
        let sql = range_select_sql(1000, 0.95, false);
        assert_eq!(sql, "SELECT * FROM t WHERE id >= 50");
    }

    #[test]
    fn fk_join_references_valid() {
        let (p, f) = fk_join_tables(50, 200, 3);
        assert_eq!(p.len(), 50);
        for row in &f {
            let k = row[0].as_int().unwrap();
            assert!((0..50).contains(&k));
        }
    }

    #[test]
    fn rows_fit_schema() {
        let s = schema(8);
        for r in table(20, 8, 2) {
            s.encode_row(&r).unwrap();
        }
    }
}
