//! Analytics workload (a scaled-down Big Data Benchmark, paper §7.1):
//! runs queries Q1–Q3 on ObliDB (flat, then with an index) and on the
//! no-security plain engine, printing times and plans.
//!
//! ```sh
//! cargo run --release --example analytics
//! ```

use oblidb::baselines::plain::PlainTable;
use oblidb::core::predicate::{CmpOp, Predicate};
use oblidb::core::{Database, DbConfig, StorageMethod};
use oblidb::workloads::bdb;
use std::time::Instant;

const SCALE: usize = 20_000; // rows per table; the full benchmark uses 360k/350k

fn main() {
    println!("generating Big Data Benchmark tables at scale {SCALE}...");
    let rankings = bdb::rankings(SCALE, 42);
    let visits = bdb::uservisits(SCALE, SCALE, 42);

    // --- ObliDB, flat storage -------------------------------------------
    let mut db = Database::new(DbConfig::default());
    db.create_table_with_rows(
        "rankings",
        bdb::rankings_schema(),
        StorageMethod::Flat,
        None,
        &rankings,
        SCALE as u64,
    )
    .unwrap();
    db.create_table_with_rows(
        "uservisits",
        bdb::uservisits_schema(),
        StorageMethod::Flat,
        None,
        &visits,
        SCALE as u64,
    )
    .unwrap();

    for (name, sql) in [("Q1", bdb::q1_sql()), ("Q2", bdb::q2_sql()), ("Q3", bdb::q3_sql())] {
        let start = Instant::now();
        let out = db.execute(&sql).unwrap();
        println!(
            "ObliDB/flat  {name}: {} rows in {:?} (select={:?}, join={:?})",
            out.len(),
            start.elapsed(),
            out.plan.select_algo,
            out.plan.join_algo,
        );
    }

    // --- ObliDB with an index on pageRank: Q1 becomes an index range scan.
    let mut db2 = Database::new(DbConfig::default());
    db2.create_table_with_rows(
        "rankings",
        bdb::rankings_schema(),
        StorageMethod::Both,
        Some("pageRank"),
        &rankings,
        SCALE as u64,
    )
    .unwrap();
    let start = Instant::now();
    let out = db2.execute(&bdb::q1_sql()).unwrap();
    println!(
        "ObliDB/index Q1: {} rows in {:?} (used_index={})",
        out.len(),
        start.elapsed(),
        out.plan.used_index
    );

    // --- Plain engine ("Spark SQL" stand-in, no security) ----------------
    let pr = PlainTable::new(bdb::rankings_schema(), rankings.clone());
    let start = Instant::now();
    let pred =
        Predicate::cmp(&pr.schema, "pageRank", CmpOp::Gt, oblidb::core::Value::Int(1000)).unwrap();
    let hits = pr.select(&pred);
    println!("plain        Q1: {} rows in {:?}", hits.len(), start.elapsed());
}
