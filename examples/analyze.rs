//! `EXPLAIN ANALYZE` and the telemetry surface over a runtime-selected
//! substrate: run a query for real, render the plan with measured
//! per-node wall time / crossings / AEAD bytes next to the planner's
//! estimates, then dump one merged metrics snapshot.
//!
//! ```sh
//! cargo run --release --example analyze
//! OBLIDB_SUBSTRATE=disk:/tmp/oblidb cargo run --release --example analyze
//! OBLIDB_SUBSTRATE=cached:512:disk cargo run --release --example analyze
//! OBLIDB_AUDIT=1 cargo run --release --example analyze
//! ```

use oblidb::core::DbConfig;
use oblidb::substrates::SubstrateSpec;
use oblidb::telemetry;

fn main() {
    let spec = match SubstrateSpec::from_env() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("OBLIDB_SUBSTRATE: {e}");
            std::process::exit(2);
        }
    };
    println!("substrate: {} (set OBLIDB_SUBSTRATE to change)", spec.profile_name());

    // Telemetry is off by default (and free when off); an explicit opt-in
    // turns on spans, counters, and histograms for this process.
    telemetry::set_enabled(true);

    let config = DbConfig { om_bytes: 4096, ..DbConfig::default() };
    println!("audit:     {}\n", config.audit);
    let mut db = oblidb::database_on_calibrated(&spec, config).expect("substrate builds");

    db.execute("CREATE TABLE events (id INT, kind INT, size INT) CAPACITY 512").unwrap();
    for i in 0..512 {
        db.execute(&format!("INSERT INTO events VALUES ({i}, {}, {})", i % 8, i * 3)).unwrap();
    }
    db.execute("CREATE TABLE kinds (kind INT, label CHAR(8)) CAPACITY 8").unwrap();
    for g in 0..8 {
        db.execute(&format!("INSERT INTO kinds VALUES ({g}, 'k{g}')")).unwrap();
    }

    // EXPLAIN ANALYZE is a statement: it executes the select and the
    // result set is the annotated rendering, one line per row.
    for query in [
        "EXPLAIN ANALYZE SELECT * FROM events WHERE kind = 3",
        "EXPLAIN ANALYZE SELECT kind, COUNT(*) FROM events WHERE size < 768 GROUP BY kind",
        "EXPLAIN ANALYZE SELECT * FROM kinds JOIN events ON kinds.kind = events.kind \
         WHERE size < 96",
    ] {
        println!("--- {query}");
        let out = db.execute(query).unwrap();
        for row in out.rows() {
            println!("{}", row[0].as_text().unwrap());
        }
        println!();
    }

    // One merged snapshot: registry counters + histograms, host traffic,
    // plan-cache counters, audit counters. Exporting it is an explicit
    // boundary decision — here, stdout at end of run.
    let snap = db.metrics_snapshot();
    println!("--- metrics snapshot (text)\n{}", snap.to_text());
    println!("--- metrics snapshot (json)\n{}", snap.to_json());

    let spans = telemetry::take_spans();
    println!("--- {} spans captured ({} dropped)", spans.len(), telemetry::dropped_spans());
    for s in spans.iter().rev().take(8) {
        println!("  {:<18} {:>10} ns (parent {})", s.kind.name(), s.dur_ns, s.parent);
    }
}
