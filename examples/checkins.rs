//! The paper's running example (§4.1): a `Checkins` table logging when
//! employees enter or exit a building.
//!
//! A naive engine that "reads each record and writes out matches" leaks,
//! through the access pattern alone, *which* rows matched — i.e. when
//! employee 3172 entered the building. This example records the simulated
//! OS-level trace for two differently-parameterized queries and shows the
//! transcripts are identical, so the adversary learns nothing but sizes.
//!
//! ```sh
//! cargo run --release --example checkins
//! ```

use oblidb::core::{Database, DbConfig};

fn build_db() -> Database {
    let mut db = Database::new(DbConfig::default());
    // Disable the Continuous algorithm: its choice leaks continuity, and
    // we want byte-identical transcripts across these two queries.
    db.config_mut().planner.enable_continuous = false;
    db.execute("CREATE TABLE Checkins (uid INT, day INT, direction INT) CAPACITY 512").unwrap();
    // 400 check-in events for 200 employees over 2 days.
    for i in 0..400 {
        let uid = 3000 + (i % 200);
        let day = i / 200;
        db.execute(&format!("INSERT INTO Checkins VALUES ({uid}, {day}, {})", i % 2)).unwrap();
    }
    db
}

fn main() {
    // Query A: when did employee 3172 check in?
    let mut db = build_db();
    db.start_trace();
    let a = db.execute("SELECT * FROM Checkins WHERE uid = 3172").unwrap();
    let trace_a = db.take_trace();

    // Query B: a completely different employee.
    let mut db = build_db();
    db.start_trace();
    let b = db.execute("SELECT * FROM Checkins WHERE uid = 3007").unwrap();
    let trace_b = db.take_trace();

    println!("query A: {} rows via {:?}", a.len(), a.plan.select_algo.unwrap());
    println!("query B: {} rows via {:?}", b.len(), b.plan.select_algo.unwrap());
    println!("trace A: {} untrusted accesses", trace_a.len());
    println!("trace B: {} untrusted accesses", trace_b.len());
    assert_eq!(
        trace_a, trace_b,
        "the OS-level transcripts must be identical for equal-size results"
    );
    println!("transcripts identical: the adversary cannot tell the queries apart.");

    // Contrast: what the paper warns about. A *non-oblivious* filter whose
    // output writes coincide with matching input rows would produce a
    // different trace per uid — here the engine's operators never do that.
    let mut db = build_db();
    db.start_trace();
    let c = db.execute("SELECT * FROM Checkins WHERE uid = 3172 AND day > 5").unwrap();
    let trace_c = db.take_trace();
    println!(
        "\na more selective query ({} rows) changes only the *output size*, \
         which ObliDB leaks by design: {} accesses vs {}.",
        c.len(),
        trace_c.len(),
        trace_a.len()
    );
}
