//! The `EnclaveMemory` seam in action: run the same queries over the
//! payload-storing `Host` and the payload-free `CountingMemory` and show
//! that the adversary-visible cost is identical — the counting substrate
//! is a fast cost model for capacity planning.
//!
//! ```sh
//! cargo run --release --example cost_model
//! ```

use oblidb::core::planner::SelectAlgo;
use oblidb::core::{Database, DbConfig};
use oblidb::enclave::{CountingMemory, EnclaveMemory, Host};

fn drive<M: EnclaveMemory>(mut db: Database<M>) -> (u64, u64, u64) {
    db.execute("CREATE TABLE events (id INT, kind INT, size INT) CAPACITY 256").unwrap();
    for i in 0..200 {
        db.execute(&format!("INSERT INTO events VALUES ({i}, {}, {})", i % 5, i * 7)).unwrap();
    }
    db.host_mut().reset_stats();
    db.execute("SELECT * FROM events WHERE kind = 3").unwrap();
    db.execute("SELECT COUNT(*), SUM(size) FROM events WHERE id < 100").unwrap();
    let stats = db.host_mut().stats();
    (stats.reads, stats.writes, stats.bytes_read + stats.bytes_written)
}

fn main() {
    // Force a size-oblivious select so the plan cannot depend on payload
    // contents (which CountingMemory does not keep).
    let mut config = DbConfig::default();
    config.planner.force_select = Some(SelectAlgo::Large);

    let (r1, w1, b1) = drive(Database::with_memory(Host::new(), config.clone()));
    let (r2, w2, b2) = drive(Database::with_memory(CountingMemory::new(), config));

    println!("substrate        reads   writes        bytes");
    println!("Host            {r1:>6}   {w1:>6}   {b1:>10}");
    println!("CountingMemory  {r2:>6}   {w2:>6}   {b2:>10}");
    assert_eq!((r1, w1, b1), (r2, w2, b2), "cost model must match the real substrate");
    println!("\ncost model matches the real substrate exactly — no payload bytes stored.");
}
