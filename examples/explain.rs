//! The prepare/explain/execute lifecycle over a runtime-selected
//! substrate, with the planner cost-calibrated to it.
//!
//! ```sh
//! cargo run --release --example explain
//! OBLIDB_SUBSTRATE=disk:/tmp/oblidb cargo run --release --example explain
//! OBLIDB_SUBSTRATE=cached:512:disk cargo run --release --example explain
//! OBLIDB_SUBSTRATE=sharded:4:host cargo run --release --example explain
//! # or from a key=value config file:
//! #   substrate = cached:512:disk
//! #   crossing_cost = 8000
//! #   threads = 4
//! cargo run --release --example explain -- deployment.conf
//! ```
//!
//! The same medium-selectivity query plans differently as the crossing
//! price climbs: with a tiny oblivious-memory budget, `Host` picks the
//! Hash select (fewest block accesses), while a disk-calibrated profile
//! picks Small (fewest boundary crossings).

use oblidb::core::{CostProfile, DbConfig, ExecConfig};
use oblidb::substrates::SubstrateSpec;

fn main() {
    // A config-file argument wins over the environment variable(s).
    let (spec, crossing_cost, threads) = match std::env::args().nth(1) {
        Some(path) => match SubstrateSpec::from_config_file(&path) {
            Ok(cfg) => {
                println!("config:    {path}");
                (cfg.spec, cfg.crossing_cost, cfg.threads)
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        },
        None => match SubstrateSpec::from_env() {
            Ok(s) => (s, None, None),
            Err(e) => {
                eprintln!("OBLIDB_SUBSTRATE: {e}");
                std::process::exit(2);
            }
        },
    };
    println!("substrate: {} (set OBLIDB_SUBSTRATE or pass a config file)", spec.profile_name());
    println!("profile:   {:?}\n", CostProfile::named(spec.profile_name()));

    // Tiny OM budget so the planner has a real trade-off to weigh: the
    // Small select needs ~52 passes here, the Hash select ~2 crossings
    // per input row.
    // The config file's `threads` key wins over `OBLIDB_THREADS` (the
    // default already honors the environment variable).
    let exec = threads.map_or_else(ExecConfig::from_env, |threads| ExecConfig { threads });
    println!("threads:   {}", exec.threads);
    let config = DbConfig { om_bytes: 128, exec, ..DbConfig::default() };
    let mut db = oblidb::database_on_calibrated(&spec, config).expect("substrate builds");
    if let Some(spins) = crossing_cost {
        db.host_mut().set_crossing_cost(spins);
    }

    db.execute("CREATE TABLE events (id INT, kind INT, size INT) CAPACITY 512").unwrap();
    for i in 0..512 {
        db.execute(&format!("INSERT INTO events VALUES ({i}, {}, {})", i % 2, i * 3)).unwrap();
    }

    let query = "SELECT * FROM events WHERE kind = 1";

    // Phase 1+2: prepare and explain — nothing has executed yet.
    let mut stmt = db.prepare(query).unwrap();
    println!("--- {query}\n--- plan (estimates only)\n{}", stmt.explain());

    // Phase 3: run, then explain again — actual counted costs appear.
    let out = stmt.run().unwrap();
    println!("--- ran: {} rows\n--- plan (with actuals)\n{}", out.len(), stmt.explain());

    // EXPLAIN is also a statement: the result set is the rendering.
    let rendered = db.execute("EXPLAIN SELECT COUNT(*) FROM events WHERE kind = 1").unwrap();
    println!("--- EXPLAIN SELECT through SQL");
    for row in rendered.rows() {
        println!("{}", row[0].as_text().unwrap());
    }

    db.checkpoint().unwrap();
}
