//! Padding mode (paper §2.3, §7.2): hide even the result sizes by padding
//! every intermediate and final table to a fixed bound, at a measured
//! slowdown. Two queries of very different selectivity produce *identical*
//! untrusted-memory transcripts.
//!
//! ```sh
//! cargo run --release --example padding_mode
//! ```

use oblidb::core::padding::PaddingConfig;
use oblidb::core::{Database, DbConfig};
use oblidb::workloads::cfpb;
use std::time::Instant;

const ROWS: usize = 10_000; // scaled-down CFPB table (paper: 107k → 200k)
const PAD: u64 = 20_000;

fn run(padding: Option<PaddingConfig>, query: &str) -> (usize, std::time::Duration, usize) {
    let mut db = Database::new(DbConfig { padding, ..DbConfig::default() });
    let rows = cfpb::complaints(ROWS, 5);
    db.create_table_with_rows(
        "complaints",
        cfpb::schema(),
        oblidb::core::StorageMethod::Flat,
        None,
        &rows,
        ROWS as u64,
    )
    .unwrap();
    db.start_trace();
    let start = Instant::now();
    let out = db.execute(query).unwrap();
    let elapsed = start.elapsed();
    let trace = db.take_trace();
    (out.len(), elapsed, trace.len())
}

fn main() {
    let q_rare = "SELECT * FROM complaints WHERE year = 2015 AND disputed = 1";
    let q_common = "SELECT * FROM complaints WHERE year > 2013";

    println!("without padding (sizes leak, queries distinguishable):");
    for q in [q_rare, q_common] {
        let (rows, t, accesses) = run(None, q);
        println!("  {rows:>6} rows, {t:>10?}, {accesses} accesses");
    }

    println!("\nwith padding to {PAD} rows (identical transcripts):");
    let mut counts = Vec::new();
    for q in [q_rare, q_common] {
        let (rows, t, accesses) = run(Some(PaddingConfig::uniform(PAD)), q);
        println!("  {rows:>6} rows, {t:>10?}, {accesses} accesses");
        counts.push(accesses);
    }
    assert_eq!(counts[0], counts[1], "padded transcripts must match");
    println!(
        "\nslowdown is the price of hiding the result size (paper §7.2 \
              reports 2.4x for selects at ~2x padding)."
    );
}
