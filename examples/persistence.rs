//! A database that survives restarts: create on a disk substrate, persist,
//! "restart" (drop the engine), reopen, and keep querying yesterday's
//! data — with rollback-protected sealed state throughout.
//!
//! ```sh
//! cargo run --release --example persistence            # self-cleaning temp dir
//! cargo run --release --example persistence -- /data/oblidb
//! ```

use oblidb::core::DbConfig;
use oblidb::substrates::{SubstrateSpec, TempDir};

fn main() {
    // An explicit directory argument persists across invocations; the
    // default demonstrates the full cycle inside one self-cleaning dir.
    let (dir, _guard) = match std::env::args().nth(1) {
        Some(d) => (std::path::PathBuf::from(d), None),
        None => {
            let guard = TempDir::new("oblidb-persistence-example").expect("temp dir");
            (guard.path().join("db"), Some(guard))
        }
    };
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    let config = DbConfig { wal: Some(Default::default()), ..DbConfig::default() };

    // First incarnation: create, load, checkpoint.
    if !dir.join(oblidb::core::DB_MANIFEST_FILE).exists() {
        let mut db = oblidb::database_on(&spec, config.clone()).expect("fresh store");
        db.execute("CREATE TABLE events (id INT, kind INT, size INT) CAPACITY 256").unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO events VALUES ({i}, {}, {})", i % 4, i * 3)).unwrap();
        }
        db.persist_to(&dir).unwrap();
        println!("created {} and persisted 100 rows", dir.display());
        drop(db); // the "enclave restart"
    }

    // Second incarnation: reopen and query yesterday's data. (Running
    // the example again against the same directory keeps accumulating —
    // each invocation is one more restart of the same database.)
    let mut db = oblidb::database_open(&spec, config).expect("reopen persisted store");
    let out = db.execute("SELECT COUNT(*), SUM(size) FROM events WHERE kind = 1").unwrap();
    let before = out.rows()[0][0].as_int().unwrap();
    println!("reopened: count={before} sum={}", out.rows()[0][1].as_int().unwrap());
    assert!(before >= 25, "the persisted load must survive the restart");

    // The reopened engine is fully live: mutate and checkpoint again.
    db.execute("INSERT INTO events VALUES (1000, 1, 300)").unwrap();
    db.persist_to(&dir).unwrap();
    let again = db.execute("SELECT COUNT(*) FROM events WHERE kind = 1").unwrap();
    assert_eq!(again.rows()[0][0].as_int(), Some(before + 1));
    println!("mutated + re-persisted: kind-1 count is now {}", before + 1);
}
