//! Point queries over the oblivious B+ tree index (paper §7.1, Figure 11):
//! per-operation latencies for SELECT / INSERT / DELETE on an indexed
//! table, plus the fixed ORAM access budget each op consumes.
//!
//! ```sh
//! cargo run --release --example point_queries
//! ```

use oblidb::core::{Database, DbConfig, StorageMethod, Value};
use oblidb::workloads::synthetic;
use std::time::Instant;

const ROWS: usize = 50_000;

fn main() {
    println!("bulk-loading an indexed table of {ROWS} rows...");
    let rows = synthetic::table(ROWS, 8, 7);
    let mut db = Database::new(DbConfig::default());
    db.create_table_with_rows(
        "t",
        synthetic::schema(8),
        StorageMethod::Indexed,
        Some("id"),
        &rows,
        (ROWS + 1000) as u64,
    )
    .unwrap();

    // Point SELECTs: each is a padded root-to-leaf descent in the ORAM.
    let probes = [3i64, 499, 25_000, 49_999];
    let start = Instant::now();
    for &k in &probes {
        let out = db.execute(&format!("SELECT * FROM t WHERE id = {k}")).unwrap();
        assert_eq!(out.len(), 1);
    }
    println!(
        "point SELECT: {:?} avg over {} probes",
        start.elapsed() / probes.len() as u32,
        probes.len()
    );

    // Point INSERTs (padded to the worst-case split chain).
    let start = Instant::now();
    let n_ins = 20;
    for i in 0..n_ins {
        db.insert("t", &[Value::Int(ROWS as i64 + i), Value::Int(0), Value::Text("x".into())])
            .unwrap();
    }
    println!("point INSERT: {:?} avg over {n_ins}", start.elapsed() / n_ins as u32);

    // Point DELETEs (padded to the worst-case merge chain).
    let start = Instant::now();
    let n_del = 20;
    for i in 0..n_del {
        let out = db.execute(&format!("DELETE FROM t WHERE id = {}", ROWS as i64 + i)).unwrap();
        assert_eq!(out.plan.output_rows, 1);
    }
    println!("point DELETE: {:?} avg over {n_del}", start.elapsed() / n_del as u32);

    // Small range query: cost scales with the scanned segment, which is
    // leaked (paper §4.1) as part of the result size.
    let start = Instant::now();
    let out = db.execute("SELECT * FROM t WHERE id >= 1000 AND id < 1050").unwrap();
    println!(
        "range of {} rows: {:?} (used_index={})",
        out.len(),
        start.elapsed(),
        out.plan.used_index
    );
}
