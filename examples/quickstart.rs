//! Quickstart: create a table, insert rows, run oblivious queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use oblidb::core::{Database, DbConfig};

fn main() {
    // The engine simulates the enclave boundary: all table data lives
    // sealed in "untrusted memory"; operators access it obliviously.
    let mut db = Database::new(DbConfig::default());

    db.execute("CREATE TABLE employees (id INT, dept INT, salary INT, name CHAR(16))").unwrap();
    for (id, dept, salary, name) in [
        (1, 10, 95_000, "ada"),
        (2, 10, 87_000, "grace"),
        (3, 20, 72_000, "alan"),
        (4, 20, 78_000, "edsger"),
        (5, 30, 103_000, "barbara"),
    ] {
        db.execute(&format!("INSERT INTO employees VALUES ({id}, {dept}, {salary}, '{name}')"))
            .unwrap();
    }

    // A selection: the planner picks an oblivious algorithm based on the
    // (already leaked) result size.
    let out = db.execute("SELECT name, salary FROM employees WHERE salary > 80000").unwrap();
    println!("High earners (plan: {:?}):", out.plan.select_algo.unwrap());
    for row in out.rows() {
        println!("  {:?} earns {:?}", row[0], row[1]);
    }

    // Aggregation fuses with selection into a single oblivious pass.
    let out = db.execute("SELECT COUNT(*), AVG(salary) FROM employees WHERE dept = 20").unwrap();
    println!(
        "Dept 20: {} people, avg salary {:?} (fused pass: {})",
        out.rows()[0][0].as_int().unwrap(),
        out.rows()[0][1],
        out.plan.fused_aggregate
    );

    // Grouped aggregation keeps per-group accumulators in oblivious memory.
    let out = db.execute("SELECT dept, SUM(salary) FROM employees GROUP BY dept").unwrap();
    println!("Payroll by department:");
    for row in out.rows() {
        println!("  dept {:?}: {:?}", row[0], row[1]);
    }

    // Updates and deletes are single oblivious passes: every block is
    // rewritten whether or not it matched.
    db.execute("UPDATE employees SET salary = 110000 WHERE name = 'barbara'").unwrap();
    let gone = db.execute("DELETE FROM employees WHERE dept = 10").unwrap();
    println!(
        "Deleted {} rows; {} remain.",
        gone.plan.output_rows,
        db.table_rows("employees").unwrap()
    );
}
