//! Serving ObliDB over TCP: starts an in-process `oblidb-server` on an
//! ephemeral port, connects two wire clients, interleaves their
//! statements against the one shared store, and prints the merged
//! engine + server metrics that the `.metrics` verb reports.
//!
//! ```sh
//! cargo run --release --example server
//! ```

use oblidb::core::{DbConfig, SharedDatabase};
use oblidb::enclave::Host;
use oblidb::server::client::{Connection, StatementResult};
use oblidb::server::server::{serve, ServerConfig};
use oblidb::telemetry;

fn run(conn: &mut Connection, who: &str, sql: &str) {
    match conn.execute(sql).unwrap_or_else(|e| panic!("{who}: {sql}: {e}")) {
        StatementResult::Rows { schema, rows } => {
            let cols: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
            println!("[{who}] {sql}");
            println!("         -> {} row(s), columns {cols:?}", rows.len());
            for row in rows.iter().take(3) {
                println!("            {row:?}");
            }
        }
        StatementResult::RowsAffected(n) => println!("[{who}] {sql}\n         -> {n} affected"),
    }
}

fn main() {
    telemetry::set_enabled(true);

    // One shared engine over an in-RAM host store; swap in
    // `oblidb::substrates::DiskMemory::create(dir)` for durability.
    let db = SharedDatabase::new(Host::new(), DbConfig::default()).unwrap();
    let handle =
        serve(db, ServerConfig { addr: "127.0.0.1:0".to_string(), workers: 2, epoch: None })
            .expect("start server");
    println!("serving on {}\n", handle.addr());

    // Two wire clients — each gets its own engine session on the server.
    let addr = handle.addr().to_string();
    let mut alice = Connection::connect(&addr).unwrap();
    let mut bob = Connection::connect(&addr).unwrap();

    run(&mut alice, "alice", "CREATE TABLE orders (id INT, total INT) STORAGE = FLAT CAPACITY 64");
    run(&mut alice, "alice", "INSERT INTO orders VALUES (1, 120)");
    run(&mut bob, "bob  ", "INSERT INTO orders VALUES (2, 75)");
    // Bob's snapshot read sees Alice's completed write immediately.
    run(&mut bob, "bob  ", "SELECT id, total FROM orders WHERE total > 100");
    run(&mut alice, "alice", "UPDATE orders SET total = 80 WHERE id = 2");
    run(&mut bob, "bob  ", "SELECT COUNT(*), SUM(total) FROM orders");
    run(&mut alice, "alice", "EXPLAIN SELECT id FROM orders WHERE total > 50");

    // The metrics verb merges engine counters (db_sessions, plan cache,
    // oram/crypto) with server lifetime counters and this connection's
    // session statistics.
    let json = bob.metrics().unwrap();
    println!("\n.metrics ->\n{json}");

    let stats = handle.shutdown();
    println!(
        "\nserver lifetime: {} connections, {} statements, {} bytes in, {} bytes out",
        stats.connections, stats.statements, stats.bytes_in, stats.bytes_out
    );
}
