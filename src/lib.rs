//! # ObliDB — Oblivious Query Processing for Secure Databases
//!
//! A full Rust reproduction of *ObliDB: Oblivious Query Processing for
//! Secure Databases* (Eskandarian & Zaharia, VLDB 2019). This facade crate
//! re-exports the workspace's public API; see the individual crates for the
//! subsystem documentation:
//!
//! * [`crypto`] — ChaCha20-Poly1305 AEAD, SHA-256/HMAC, SipHash PRF.
//! * [`enclave`] — the simulated enclave boundary: untrusted block memory
//!   with access-pattern tracing and an oblivious-memory budget.
//! * [`substrates`] — production-shaped [`enclave::EnclaveMemory`]
//!   backends: disk-backed ([`substrates::DiskMemory`]), LRU-cached
//!   ([`substrates::CachedMemory`]), sharded
//!   ([`substrates::ShardedMemory`]), plus runtime selection via
//!   [`substrates::SubstrateSpec`] / [`substrates::AnySubstrate`].
//! * [`storage`] — sealed (encrypted + MACed + rollback-protected) block
//!   regions.
//! * [`oram`] — Path ORAM, non-recursive and recursive.
//! * [`btree`] — the oblivious B+ tree stored inside Path ORAM.
//! * [`core`] — the database engine: storage methods, oblivious operators,
//!   query planner, SQL front-end.
//! * [`baselines`] — the comparison systems re-implemented on the same
//!   substrate (Opaque, plain/Spark-SQL-like, HIRB + vORAM, MySQL-like).
//! * [`workloads`] — deterministic generators for the paper's evaluation
//!   workloads (Big Data Benchmark, CFPB, L1–L5 mixes).
//!
//! ## Quickstart
//!
//! ```
//! use oblidb::core::{Database, DbConfig, StorageMethod};
//!
//! let mut db = Database::new(DbConfig::default());
//! db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
//! db.execute("INSERT INTO t VALUES (2, 20)").unwrap();
//! let out = db.execute("SELECT v FROM t WHERE k = 2").unwrap();
//! assert_eq!(out.rows()[0][0].as_int(), Some(20));
//! # let _ = StorageMethod::Flat;
//! ```

pub use oblidb_baselines as baselines;
pub use oblidb_btree as btree;
pub use oblidb_core as core;
pub use oblidb_crypto as crypto;
pub use oblidb_enclave as enclave;
pub use oblidb_oram as oram;
pub use oblidb_storage as storage;
pub use oblidb_substrates as substrates;
pub use oblidb_workloads as workloads;

/// Opens a [`core::Database`] over the substrate a
/// [`substrates::SubstrateSpec`] describes — runtime backend selection
/// with a single engine type:
///
/// ```
/// use oblidb::substrates::SubstrateSpec;
/// use oblidb::core::DbConfig;
///
/// // Disk-backed engine with an LRU of 4096 hot blocks, in a
/// // self-cleaning temp directory.
/// let spec = SubstrateSpec::CachedDisk { dir: None, capacity_blocks: 4096 };
/// let mut db = oblidb::database_on(&spec, DbConfig::default()).unwrap();
/// db.execute("CREATE TABLE t (k INT)").unwrap();
/// db.execute("INSERT INTO t VALUES (7)").unwrap();
/// assert_eq!(db.execute("SELECT * FROM t WHERE k = 7").unwrap().len(), 1);
/// db.checkpoint().unwrap(); // flush the cache, fsync the region files
/// ```
pub fn database_on(
    spec: &substrates::SubstrateSpec,
    config: core::DbConfig,
) -> std::io::Result<core::Database<substrates::AnySubstrate>> {
    Ok(core::Database::with_memory(spec.build()?, config))
}

/// Like [`database_on`], but with the planner's cost model **calibrated to
/// the substrate**: the [`core::CostProfile`] conventionally paired with
/// the spec's label (`disk` ≫ `cached` ≫ `host` crossing weight) is
/// installed into `config.planner.cost_model`, so the same query can
/// legitimately pick a different physical operator here than on an
/// in-memory engine.
///
/// Note this makes plan choices — deliberate, §2.3-sanctioned leakage —
/// substrate-dependent. Use [`database_on`] when traces must be identical
/// across substrates (the conformance suite does).
pub fn database_on_calibrated(
    spec: &substrates::SubstrateSpec,
    mut config: core::DbConfig,
) -> std::io::Result<core::Database<substrates::AnySubstrate>> {
    config.planner.cost_model =
        core::CostModel::Measured(core::CostProfile::named(spec.profile_name()));
    database_on(spec, config)
}
