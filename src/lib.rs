//! # ObliDB — Oblivious Query Processing for Secure Databases
//!
//! A full Rust reproduction of *ObliDB: Oblivious Query Processing for
//! Secure Databases* (Eskandarian & Zaharia, VLDB 2019). This facade crate
//! re-exports the workspace's public API; see the individual crates for the
//! subsystem documentation:
//!
//! * [`crypto`] — ChaCha20-Poly1305 AEAD, SHA-256/HMAC, SipHash PRF.
//! * [`enclave`] — the simulated enclave boundary: untrusted block memory
//!   with access-pattern tracing and an oblivious-memory budget.
//! * [`substrates`] — production-shaped [`enclave::EnclaveMemory`]
//!   backends: disk-backed ([`substrates::DiskMemory`]), LRU-cached
//!   ([`substrates::CachedMemory`]), sharded
//!   ([`substrates::ShardedMemory`]), plus runtime selection via
//!   [`substrates::SubstrateSpec`] / [`substrates::AnySubstrate`].
//! * [`telemetry`] — enclave-safe observability: hierarchical spans over a
//!   fixed in-enclave ring, a counters/histograms registry, and text/JSON
//!   exporters for explicit boundary points. Off by default and free when
//!   off (one relaxed atomic load per site).
//! * [`storage`] — sealed (encrypted + MACed + rollback-protected) block
//!   regions.
//! * [`oram`] — Path ORAM, non-recursive and recursive.
//! * [`btree`] — the oblivious B+ tree stored inside Path ORAM.
//! * [`core`] — the database engine: storage methods, oblivious operators,
//!   query planner, SQL front-end — plus [`core::SharedDatabase`], the
//!   concurrent-session layer over one store.
//! * [`txn`] — epoch-based transactions over the shared engine:
//!   `BEGIN`/`COMMIT`/`ROLLBACK` sessions with buffered write sets,
//!   Obladi-style group commit ([`txn::TxnManager`]), and the background
//!   epoch flusher.
//! * [`server`] — the TCP serving front-end: a length-prefixed wire
//!   protocol, session-per-connection server ([`server::serve`]), blocking
//!   client, and the `oblidb-serve` / `oblidb-sql` binaries.
//! * [`baselines`] — the comparison systems re-implemented on the same
//!   substrate (Opaque, plain/Spark-SQL-like, HIRB + vORAM, MySQL-like).
//! * [`workloads`] — deterministic generators for the paper's evaluation
//!   workloads (Big Data Benchmark, CFPB, L1–L5 mixes).
//!
//! ## Quickstart
//!
//! ```
//! use oblidb::core::{Database, DbConfig, StorageMethod};
//!
//! let mut db = Database::new(DbConfig::default());
//! db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
//! db.execute("INSERT INTO t VALUES (2, 20)").unwrap();
//! let out = db.execute("SELECT v FROM t WHERE k = 2").unwrap();
//! assert_eq!(out.rows()[0][0].as_int(), Some(20));
//! # let _ = StorageMethod::Flat;
//! ```

pub use oblidb_baselines as baselines;
pub use oblidb_btree as btree;
pub use oblidb_core as core;
pub use oblidb_crypto as crypto;
pub use oblidb_enclave as enclave;
pub use oblidb_oram as oram;
pub use oblidb_server as server;
pub use oblidb_storage as storage;
pub use oblidb_substrates as substrates;
pub use oblidb_telemetry as telemetry;
pub use oblidb_txn as txn;
pub use oblidb_workloads as workloads;

/// Opens a [`core::Database`] over the substrate a
/// [`substrates::SubstrateSpec`] describes — runtime backend selection
/// with a single engine type:
///
/// ```
/// use oblidb::substrates::SubstrateSpec;
/// use oblidb::core::DbConfig;
///
/// // Disk-backed engine with an LRU of 4096 hot blocks, in a
/// // self-cleaning temp directory.
/// let spec = SubstrateSpec::CachedDisk { dir: None, capacity_blocks: 4096 };
/// let mut db = oblidb::database_on(&spec, DbConfig::default()).unwrap();
/// db.execute("CREATE TABLE t (k INT)").unwrap();
/// db.execute("INSERT INTO t VALUES (7)").unwrap();
/// assert_eq!(db.execute("SELECT * FROM t WHERE k = 7").unwrap().len(), 1);
/// db.checkpoint().unwrap(); // flush the cache, fsync the region files
/// ```
pub fn database_on(
    spec: &substrates::SubstrateSpec,
    config: core::DbConfig,
) -> std::io::Result<core::Database<substrates::AnySubstrate>> {
    core::Database::try_with_memory(spec.build()?, config)
        .map_err(|e| std::io::Error::other(e.to_string()))
}

/// Errors from [`database_open`]: substrate-level I/O while re-attaching,
/// or engine-level manifest/recovery failures.
#[derive(Debug)]
pub enum OpenError {
    /// Opening the substrate (region files, region table) failed.
    Io(std::io::Error),
    /// The engine rejected the manifest or failed during reopen/recovery.
    Db(core::DbError),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "substrate: {e}"),
            OpenError::Db(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for OpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpenError::Io(e) => Some(e),
            OpenError::Db(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for OpenError {
    fn from(e: std::io::Error) -> Self {
        OpenError::Io(e)
    }
}

impl From<core::DbError> for OpenError {
    fn from(e: core::DbError) -> Self {
        OpenError::Db(e)
    }
}

/// Reopens a database persisted with [`core::Database::persist_to`] on a
/// durable substrate spec (`disk:/path`, `cached:N:disk:/path`,
/// `sharded:N:disk:/path`): re-attaches the substrate
/// ([`substrates::SubstrateSpec::open`]), verifies the sealed manifest,
/// and reconstructs the engine so prepare/explain/execute resumes against
/// yesterday's data with byte-identical results and traces.
///
/// `config.seed` must be the seed the database was created with — it is
/// the enclave identity the manifest is sealed to.
///
/// Crash recovery: when the durable write-ahead log extends past the last
/// checkpoint (the engine crashed, or was dropped without `persist_to`),
/// the data regions past the checkpoint cannot be trusted; this function
/// then rebuilds in place — it extracts every durable statement from the
/// log, wipes the store, replays the full history into a fresh engine on
/// the same directories, and re-persists. Statements that fail during
/// replay are skipped exactly as they failed originally (the WAL records
/// intent); the rebuilt engine is returned ready to use.
pub fn database_open(
    spec: &substrates::SubstrateSpec,
    config: core::DbConfig,
) -> Result<core::Database<substrates::AnySubstrate>, OpenError> {
    database_open_with_report(spec, config).map(|(db, _)| db)
}

/// [`database_open`], additionally returning the [`core::RecoveryReport`]
/// when crash recovery ran (`None` on a clean reopen). Callers that must
/// audit recovery — e.g. alert on statements skipped during replay — use
/// this; `database_open` is the convenience form that drops the report.
pub fn database_open_with_report(
    spec: &substrates::SubstrateSpec,
    mut config: core::DbConfig,
) -> Result<(core::Database<substrates::AnySubstrate>, Option<core::RecoveryReport>), OpenError> {
    let dir = spec.persist_dir().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "only disk-backed substrate specs with an explicit directory can be reopened",
        )
    })?;
    // Reload the persisted calibration artifact (written by
    // [`database_on_calibrated`]) so planner weights survive restarts.
    // Only a caller-default cost model is substituted — an explicit model
    // in `config` is a deliberate choice and wins over the artifact.
    if config.planner.cost_model == core::DbConfig::default().planner.cost_model {
        if let Some(profile) = core::CostProfile::load_from(dir) {
            config.planner.cost_model = core::CostModel::Measured(profile);
        }
    }
    // A pending recovery journal means an earlier rebuild was interrupted
    // (or could not be checkpointed); the store may be in any state, but
    // the journal — directly, or via its pointer to a live WAL — holds
    // the full committed history. Resume from it.
    if let Some(plan) = core::read_recovery_journal(dir, &config)? {
        let statements = match spec.open() {
            Ok(mut host) => core::resolve_recovery_statements(&mut host, &plan),
            // The store itself is unopenable (a crash mid-rebuild): the
            // journal's inline statements are the surviving history.
            Err(_) => plan.statements.clone(),
        };
        return rebuild(spec, config, &statements).map(|(db, r)| (db, Some(r)));
    }
    let host = spec.open()?;
    match core::Database::open_with_memory(host, config.clone(), dir)? {
        core::Reopened::Clean(db) => Ok((db, None)),
        // open_with_memory already journaled the plan, so even a crash
        // during this rebuild cannot lose the committed statements.
        core::Reopened::NeedsRecovery(plan) => {
            rebuild(spec, config, &plan.statements).map(|(db, r)| (db, Some(r)))
        }
    }
}

/// Wipes the store's region files, replays the full durable history into
/// a fresh engine on the same directories, and re-persists (which also
/// retires the recovery journal).
fn rebuild(
    spec: &substrates::SubstrateSpec,
    config: core::DbConfig,
    statements: &[String],
) -> Result<(core::Database<substrates::AnySubstrate>, core::RecoveryReport), OpenError> {
    let dir = spec.persist_dir().expect("checked by caller");
    let replay_is_logged = config.wal.is_some_and(|w| w.durable_appends);
    // Re-journal the resolved history before destroying anything: the
    // previous journal may point at a WAL the wipe is about to delete.
    core::write_recovery_statements(dir, &config, statements)?;
    wipe_store(spec)?;
    // A fresh *epoch*, not just a fresh engine: the rebuild replays a
    // prefix of the history the old incarnation sealed into this same
    // store, so deterministic keys would reuse (key, region, nonce)
    // triples the host has already seen ciphertexts for.
    let mut db = core::Database::try_with_memory_fresh_epoch(spec.build()?, config)?;
    let report = db.restore(statements)?;
    match db.persist_to(dir) {
        Ok(()) => {} // journal retired by persist_to
        Err(core::DbError::Unsupported(_)) if replay_is_logged => {
            // The replayed history contains state persist_to cannot
            // checkpoint yet (an indexed CREATE TABLE in the replay). The
            // rebuilt engine is fully usable and its fresh WAL — written
            // by the replay itself, with durable appends — holds the
            // complete history and keeps receiving new mutations. Point
            // the journal at it, so the next open recovers the full
            // (possibly extended) history instead of wedging or losing
            // post-rebuild work.
            db.journal_live_wal(dir, statements)?;
        }
        Err(e) => return Err(e.into()),
    }
    Ok((db, report))
}

/// Removes a store's region files and region tables so recovery can
/// rebuild on the same directories. The sealed manifest is left in place
/// until `persist_to` atomically replaces it.
fn wipe_store(spec: &substrates::SubstrateSpec) -> std::io::Result<()> {
    let Some(dir) = spec.persist_dir() else { return Ok(()) };
    let mut dirs = vec![dir.to_path_buf()];
    if let substrates::SubstrateSpec::ShardedDisk { shards, .. } = spec {
        dirs = (0..*shards).map(|i| dir.join(format!("shard-{i}"))).collect();
    }
    for d in dirs {
        if !d.exists() {
            // A crash can land before a shard directory was even created.
            continue;
        }
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".blk") || name == substrates::REGION_META_FILE {
                std::fs::remove_file(entry.path())?;
            }
        }
    }
    Ok(())
}

/// Like [`database_on`], but with the planner's cost model **calibrated to
/// the substrate**. On a durable spec (one with a persist directory) this
/// loads the `oblidb.calibration` artifact if present, otherwise runs the
/// [`core::CostProfile::calibrate`] micro-probe against the freshly built
/// substrate and saves the result next to the region files, so the
/// measured weights survive restarts and are reloaded by
/// [`database_open`]. Non-durable specs fall back to the
/// [`core::CostProfile`] conventionally paired with the spec's label
/// (`disk` ≫ `cached` ≫ `host` crossing weight), keeping in-memory runs
/// deterministic.
///
/// Note this makes plan choices — deliberate, §2.3-sanctioned leakage —
/// substrate-dependent. Use [`database_on`] when traces must be identical
/// across substrates (the conformance suite does).
pub fn database_on_calibrated(
    spec: &substrates::SubstrateSpec,
    mut config: core::DbConfig,
) -> std::io::Result<core::Database<substrates::AnySubstrate>> {
    let mut mem = spec.build()?;
    let profile = match spec.persist_dir() {
        Some(dir) => core::CostProfile::load_from(dir).unwrap_or_else(|| {
            let p = core::CostProfile::calibrate(spec.profile_name(), &mut mem)
                .unwrap_or_else(|_| core::CostProfile::named(spec.profile_name()));
            // Best-effort: the artifact is advisory, an unwritable dir
            // just means recalibration on the next cold open.
            let _ = p.save_to(dir);
            p
        }),
        None => core::CostProfile::named(spec.profile_name()),
    };
    config.planner.cost_model = core::CostModel::Measured(profile);
    core::Database::try_with_memory(mem, config).map_err(|e| std::io::Error::other(e.to_string()))
}
