//! Batched sealed-block I/O: result-equivalence, crossing accounting, and
//! tamper attribution. Seeded-loop property tests in the style of
//! `memory_seam.rs` — the workspace is dependency-free, so cases come from
//! [`EnclaveRng`] instead of proptest.

use oblidb::core::exec;
use oblidb::core::predicate::{CmpOp, Predicate};
use oblidb::core::table::FlatTable;
use oblidb::core::types::{Column, DataType, Schema, Value};
use oblidb::crypto::aead::AeadKey;
use oblidb::enclave::{CountingMemory, EnclaveMemory, EnclaveRng, Host};
use oblidb::storage::{SealedRegion, SealedScan, StorageError};

/// Random batched write/read sequences produce exactly the bytes a
/// per-block loop would, on `Host`.
#[test]
fn batched_io_is_result_equivalent_to_per_block() {
    let mut rng = EnclaveRng::seed_from_u64(0xBA7C);
    for case in 0..32 {
        let blocks = 4 + rng.below(29) as usize;
        let payload = 1 + rng.below(48) as usize;
        let mut batched_host = Host::new();
        let mut loop_host = Host::new();
        let key = AeadKey([case as u8 + 1; 32]);
        let mut batched =
            SealedRegion::create(&mut batched_host, key.clone(), blocks, payload).unwrap();
        let mut looped = SealedRegion::create(&mut loop_host, key, blocks, payload).unwrap();

        for _ in 0..12 {
            let start = rng.below(blocks as u64);
            let count = 1 + rng.below(blocks as u64 - start) as usize;
            let mut payloads = vec![0u8; count * payload];
            rng.fill(&mut payloads);
            batched.write_batch(&mut batched_host, start, &payloads).unwrap();
            for (i, chunk) in payloads.chunks_exact(payload).enumerate() {
                looped.write(&mut loop_host, start + i as u64, chunk).unwrap();
            }
        }
        // Whole-region batched read equals the per-block loop's bytes.
        let all = batched.read_batch(&mut batched_host, 0, blocks).unwrap().to_vec();
        for i in 0..blocks {
            let expected = looped.read(&mut loop_host, i as u64).unwrap();
            assert_eq!(&all[i * payload..(i + 1) * payload], expected, "case {case} block {i}");
        }
        // Block counters agree; only the crossing counter differs.
        let (b, l) = (batched_host.stats(), loop_host.stats());
        assert_eq!(
            (b.reads, b.writes, b.bytes_read, b.bytes_written),
            (l.reads, l.writes, l.bytes_read, l.bytes_written),
            "case {case}"
        );
        assert!(b.crossings < l.crossings, "case {case}: batching must reduce crossings");
    }
}

/// Batched calls record the identical per-block trace on `Host` and
/// `CountingMemory`, and the chunked scan issues exactly
/// `ceil(blocks / chunk)` crossings.
#[test]
fn batched_crossings_and_traces_match_on_counting_memory() {
    let mut rng = EnclaveRng::seed_from_u64(0x5EAB);
    for case in 0..24 {
        let blocks = 8 + rng.below(120) as usize;
        let payload = 4 + rng.below(40) as usize;
        let chunk = 1 + rng.below(blocks as u64) as usize;

        fn drive<M: EnclaveMemory>(
            m: &mut M,
            blocks: usize,
            payload: usize,
            chunk: usize,
        ) -> (oblidb::enclave::Trace, oblidb::enclave::HostStats, u64) {
            let mut region = SealedRegion::create(m, AeadKey([9u8; 32]), blocks, payload).unwrap();
            m.reset_stats();
            m.start_trace();
            let mut scan = SealedScan::with_chunk(&region, chunk);
            let mut seen = 0u64;
            while let Some((_, payloads)) = scan.next_chunk(m, &mut region).unwrap() {
                seen += (payloads.len() / payload) as u64;
            }
            (m.take_trace(), m.stats(), seen)
        }

        let (trace_h, stats_h, seen_h) = drive(&mut Host::new(), blocks, payload, chunk);
        let (trace_c, stats_c, seen_c) = drive(&mut CountingMemory::new(), blocks, payload, chunk);
        assert_eq!(trace_h, trace_c, "case {case}: traces must be identical");
        assert_eq!(stats_h, stats_c, "case {case}: counters must be identical");
        assert_eq!((seen_h, seen_c), (blocks as u64, blocks as u64), "case {case}");
        assert_eq!(
            stats_h.crossings,
            (blocks as u64).div_ceil(chunk as u64),
            "case {case}: one crossing per {chunk}-block chunk over {blocks} blocks"
        );
        assert_eq!(stats_h.reads, blocks as u64, "case {case}: every block still read");
    }
}

/// Corrupting any random block surfaces `TamperDetected` with that block's
/// absolute index from inside whatever batch covers it.
#[test]
fn tamper_inside_batch_reports_exact_block() {
    let mut rng = EnclaveRng::seed_from_u64(0x7A3);
    for case in 0..32 {
        let blocks = 8u64;
        let payload = 16usize;
        let mut host = Host::new();
        let mut region =
            SealedRegion::create(&mut host, AeadKey([3u8; 32]), blocks as usize, payload).unwrap();
        let mut data = vec![0u8; blocks as usize * payload];
        rng.fill(&mut data);
        region.write_batch(&mut host, 0, &data).unwrap();

        let victim = rng.below(blocks);
        let byte = rng.next_u64();
        host.adversary_corrupt(region.region_id(), victim, |b| {
            let i = (byte % b.len() as u64) as usize;
            b[i] ^= 1 << (byte % 8) as u8;
        });
        let err = region.read_batch(&mut host, 0, blocks as usize).unwrap_err();
        assert_eq!(
            err,
            StorageError::TamperDetected { region: region.region_id(), index: victim },
            "case {case}"
        );
        // Gather batches attribute the same index.
        let indices: Vec<u64> = (0..blocks).rev().collect();
        let err = region.read_batch_at(&mut host, &indices).unwrap_err();
        assert_eq!(
            err,
            StorageError::TamperDetected { region: region.region_id(), index: victim },
            "case {case} (gather)"
        );
    }
}

fn schema() -> Schema {
    Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)])
}

fn build_flat<M: EnclaveMemory>(host: &mut M, n: i64) -> FlatTable {
    let s = schema();
    let encoded: Vec<Vec<u8>> =
        (0..n).map(|i| s.encode_row(&[Value::Int(i), Value::Int(i * 3)]).unwrap()).collect();
    FlatTable::from_encoded_rows(host, AeadKey([1u8; 32]), s, &encoded, n as u64).unwrap()
}

/// Sequential-scan operators issue one boundary crossing per chunk — not
/// per block — while still touching every block (verified on the
/// payload-free cost model, where the counts are exact).
#[test]
fn operators_issue_one_crossing_per_chunk() {
    let n: i64 = 500;
    let mut counting = CountingMemory::new();
    let mut t = build_flat(&mut counting, n);
    let chunk = t.io_chunk_rows() as u64;
    let expected_chunks = (n as u64).div_ceil(chunk);

    // select_large: copy pass (read T, write R) + clear pass (read R,
    // write R) → four chunked streams over n blocks, plus R's creation.
    counting.reset_stats();
    let pred = Predicate::Cmp { col: 0, op: CmpOp::Lt, value: Value::Int(10) };
    let out = exec::select_large(&mut counting, &mut t, &pred, AeadKey([2u8; 32])).unwrap();
    let s = counting.stats();
    assert_eq!(s.total_accesses(), 5 * n as u64, "4 scan passes + zero-init of R");
    assert_eq!(s.crossings, 5 * expected_chunks, "one crossing per chunked run");
    drop(out);

    // A fused aggregate is a single chunked read stream.
    counting.reset_stats();
    exec::aggregate(&mut counting, &mut t, exec::AggFunc::Count, None, &Predicate::True).unwrap();
    let s = counting.stats();
    assert_eq!(s.reads, n as u64);
    assert_eq!(s.writes, 0);
    assert_eq!(s.crossings, expected_chunks);
}

/// The batched operators over `CountingMemory` still produce the exact
/// trace a `Host` run produces — batching moved the chunk boundaries into
/// the substrate without disturbing the adversary's per-block view.
#[test]
fn batched_operator_traces_still_match_across_substrates() {
    let pred = Predicate::Cmp { col: 0, op: CmpOp::Ge, value: Value::Int(40) };

    let mut host = Host::new();
    let mut t_host = build_flat(&mut host, 96);
    host.start_trace();
    exec::select_large(&mut host, &mut t_host, &pred, AeadKey([2u8; 32])).unwrap();
    exec::aggregate(&mut host, &mut t_host, exec::AggFunc::Sum, Some(1), &pred).unwrap();
    let trace_host = host.take_trace();

    let mut counting = CountingMemory::new();
    let mut t_cnt = build_flat(&mut counting, 96);
    counting.start_trace();
    exec::select_large(&mut counting, &mut t_cnt, &pred, AeadKey([2u8; 32])).unwrap();
    exec::aggregate(&mut counting, &mut t_cnt, exec::AggFunc::Sum, Some(1), &pred).unwrap();
    let trace_cnt = counting.take_trace();

    assert_eq!(trace_host, trace_cnt);
}
