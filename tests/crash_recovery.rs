//! Crash-consistency property tests: interrupt a workload between its
//! data writes (`write_blocks`) and the next checkpoint (`sync` +
//! manifest), "crash" by dropping the engine, reopen via
//! `database_open`, and assert that recovery — manifest state plus
//! durable-WAL replay — converges to the pre-crash committed state, on
//! every disk-backed substrate spec.
//!
//! "Committed" means the statement's WAL record reached the durable
//! medium, which `WalConfig::durable_appends` (the default) guarantees
//! before the statement executes. The oracle is an in-memory engine
//! replaying the identical statement stream.

use oblidb::core::{Database, DbConfig, Row};
use oblidb::enclave::EnclaveRng;
use oblidb::substrates::{SubstrateSpec, TempDir};

fn wal_config() -> DbConfig {
    DbConfig { wal: Some(Default::default()), ..DbConfig::default() }
}

/// Deterministic statement stream: weighted inserts/updates/deletes over
/// one table, parameterized by the property seed.
fn random_mutation(rng: &mut EnclaveRng, next_id: &mut i64) -> String {
    match rng.next_u64() % 10 {
        // Inserts dominate so the table keeps growing.
        0..=5 => {
            let id = *next_id;
            *next_id += 1;
            format!("INSERT INTO t VALUES ({id}, {})", rng.next_u64() % 1000)
        }
        6..=7 => {
            let pivot = rng.next_u64() % (*next_id).max(1) as u64;
            format!("UPDATE t SET v = {} WHERE k >= {pivot}", rng.next_u64() % 1000)
        }
        _ => {
            let victim = rng.next_u64() % (*next_id).max(1) as u64;
            format!("DELETE FROM t WHERE k = {victim}")
        }
    }
}

fn all_rows(db: &mut Database<impl oblidb::enclave::EnclaveMemory>) -> Vec<Row> {
    db.execute("SELECT * FROM t ORDER BY k").unwrap().rows().to_vec()
}

/// One crash-recovery scenario: `committed` statements run (some before a
/// mid-stream checkpoint, the rest after it, with no sync before the
/// "crash"), then the engine is dropped and reopened.
fn crash_and_recover(spec: &SubstrateSpec, seed: u64) {
    let label = spec.profile_name();
    let mut rng = EnclaveRng::seed_from_u64(seed);
    let total = 16 + (rng.next_u64() % 12) as usize;
    let checkpoint_at = 4 + (rng.next_u64() % (total as u64 - 6)) as usize;

    let mut statements = vec!["CREATE TABLE t (k INT, v INT) CAPACITY 16".to_string()];
    let mut next_id = 0i64;
    for _ in 0..total {
        statements.push(random_mutation(&mut rng, &mut next_id));
    }

    // Oracle: the same statements on a fresh in-memory engine.
    let expected = {
        let mut oracle = Database::new(DbConfig::default());
        for stmt in &statements {
            oracle.execute(stmt).unwrap();
        }
        all_rows(&mut oracle)
    };

    // System under test: checkpoint mid-stream, crash at the end.
    {
        let mut db = oblidb::database_on(spec, wal_config()).unwrap();
        for (i, stmt) in statements.iter().enumerate() {
            db.execute(stmt).unwrap();
            if i + 1 == checkpoint_at {
                db.persist_to(spec.persist_dir().unwrap()).unwrap();
            }
        }
        // Post-checkpoint statements performed their write_blocks; the
        // crash lands before any further sync. Dropping the engine models
        // it: a write-back cache loses its unflushed blocks, and no
        // manifest is written.
    }

    // Recovery: manifest (catalog/geometry/log identity) + WAL replay.
    let mut recovered = oblidb::database_open(spec, wal_config()).unwrap();
    assert_eq!(
        all_rows(&mut recovered),
        expected,
        "{label} seed {seed}: recovery must converge to the pre-crash committed state \
         (checkpoint at {checkpoint_at}/{total})"
    );

    // Recovery re-persisted the store: a second open is clean and equal.
    drop(recovered);
    let mut again = oblidb::database_open(spec, wal_config()).unwrap();
    assert_eq!(all_rows(&mut again), expected, "{label} seed {seed}: second open diverged");
}

#[test]
fn crash_between_writes_and_sync_recovers_on_disk() {
    for seed in 0..4u64 {
        let guard = TempDir::new("oblidb-crash-disk").unwrap();
        let spec = SubstrateSpec::Disk { dir: Some(guard.path().join("db")) };
        crash_and_recover(&spec, seed);
    }
}

#[test]
fn crash_between_writes_and_sync_recovers_on_cached_disk() {
    for seed in 0..4u64 {
        let guard = TempDir::new("oblidb-crash-cached").unwrap();
        // A tiny cache: some post-checkpoint data blocks reach disk via
        // eviction (ahead of the manifest), others are lost with the
        // cache — the messiest crash state.
        let spec =
            SubstrateSpec::CachedDisk { dir: Some(guard.path().join("db")), capacity_blocks: 8 };
        crash_and_recover(&spec, seed);
    }
}

#[test]
fn crash_between_writes_and_sync_recovers_on_sharded_disk() {
    for seed in 0..2u64 {
        let guard = TempDir::new("oblidb-crash-sharded").unwrap();
        let spec = SubstrateSpec::ShardedDisk { dir: Some(guard.path().join("db")), shards: 2 };
        crash_and_recover(&spec, seed);
    }
}

#[test]
fn crash_during_recovery_itself_loses_nothing() {
    // The nastiest schedule: crash past a checkpoint, start recovery,
    // then crash again mid-rebuild — after the store was wiped but before
    // the replay finished. The recovery journal written at detection time
    // must still carry the full committed history.
    let guard = TempDir::new("oblidb-crash-double").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };

    let statements = [
        "CREATE TABLE t (k INT, v INT) CAPACITY 16".to_string(),
        "INSERT INTO t VALUES (1, 10)".to_string(),
        "INSERT INTO t VALUES (2, 20)".to_string(),
        "INSERT INTO t VALUES (3, 30)".to_string(),
    ];
    {
        let mut db = oblidb::database_on(&spec, wal_config()).unwrap();
        for (i, stmt) in statements.iter().enumerate() {
            db.execute(stmt).unwrap();
            if i == 1 {
                db.persist_to(&dir).unwrap();
            }
        }
    } // first crash

    // First recovery attempt: detection journals the history...
    let host = spec.open().unwrap();
    match Database::open_with_memory(host, wal_config(), &dir).unwrap() {
        oblidb::core::Reopened::NeedsRecovery(plan) => {
            assert_eq!(plan.statements.len(), statements.len());
        }
        oblidb::core::Reopened::Clean(_) => panic!("the crash must be detected"),
    }
    // ...then the rebuild "crashes" at the worst moment: the store is
    // gone entirely, only manifest + journal survive.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if name.ends_with(".blk") || name == oblidb::substrates::REGION_META_FILE {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
    assert!(dir.join(oblidb::core::RECOVERY_JOURNAL_FILE).exists());

    // Second open resumes from the journal and converges.
    let mut recovered = oblidb::database_open(&spec, wal_config()).unwrap();
    assert_eq!(
        all_rows(&mut recovered),
        vec![
            vec![oblidb::core::Value::Int(1), oblidb::core::Value::Int(10)],
            vec![oblidb::core::Value::Int(2), oblidb::core::Value::Int(20)],
            vec![oblidb::core::Value::Int(3), oblidb::core::Value::Int(30)],
        ]
    );
    // A completed recovery retires the journal.
    assert!(!dir.join(oblidb::core::RECOVERY_JOURNAL_FILE).exists());
}

#[test]
fn wal_growth_past_checkpoint_still_recovers() {
    // Appends double the log region in place; a crash after the log grew
    // past its checkpointed capacity must read as a legitimate overhang,
    // not as a swapped/resized file.
    let guard = TempDir::new("oblidb-crash-walgrow").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    let tiny_wal = DbConfig {
        wal: Some(oblidb::core::wal::WalConfig { capacity: 2, ..Default::default() }),
        ..DbConfig::default()
    };
    {
        let mut db = oblidb::database_on(&spec, tiny_wal.clone()).unwrap();
        db.execute("CREATE TABLE t (k INT, v INT) CAPACITY 16").unwrap();
        db.persist_to(&dir).unwrap(); // checkpoint at 1 record, capacity 2
        for i in 0..6 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {i})")).unwrap();
        }
        // The log grew 2 → 8; crash.
    }
    let mut recovered = oblidb::database_open(&spec, tiny_wal.clone()).unwrap();
    assert_eq!(all_rows(&mut recovered).len(), 6);
    // And a *clean* reopen after the grown log was checkpointed.
    recovered.persist_to(&dir).unwrap();
    drop(recovered);
    let mut clean = oblidb::database_open(&spec, tiny_wal).unwrap();
    assert_eq!(all_rows(&mut clean).len(), 6);
}

#[test]
fn indexed_create_after_checkpoint_does_not_wedge_recovery() {
    // An INDEXED table created after the last checkpoint replays fine but
    // cannot be re-persisted; recovery must hand back a working engine
    // (reporting the situation) instead of failing every future open.
    let guard = TempDir::new("oblidb-crash-indexed").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    {
        let mut db = oblidb::database_on(&spec, wal_config()).unwrap();
        db.execute("CREATE TABLE t (k INT, v INT) CAPACITY 16").unwrap();
        db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        db.persist_to(&dir).unwrap();
        db.execute("CREATE TABLE idx (k INT) STORAGE = INDEXED INDEX ON k CAPACITY 16").unwrap();
        db.execute("INSERT INTO idx VALUES (5)").unwrap();
    } // crash
    let (mut db, report) = oblidb::database_open_with_report(&spec, wal_config()).unwrap();
    let report = report.expect("recovery ran");
    assert!(report.skipped.is_empty(), "{:?}", report.skipped);
    assert_eq!(all_rows(&mut db).len(), 1);
    assert_eq!(db.execute("SELECT * FROM idx WHERE k = 5").unwrap().len(), 1);
    // Mutations after the unpersistable rebuild land in its live WAL,
    // which the journal now points at — so they survive the next open.
    db.execute("INSERT INTO t VALUES (2, 20)").unwrap();
    drop(db);
    let mut again = oblidb::database_open(&spec, wal_config()).unwrap();
    assert_eq!(all_rows(&mut again).len(), 2, "post-rebuild mutations must not be lost");
    assert_eq!(again.execute("SELECT * FROM idx WHERE k = 5").unwrap().len(), 1);
}

#[test]
fn crash_before_any_checkpoint_recovers_from_wal_alone() {
    // The manifest may not exist at all (crash before the first
    // persist_to): nothing can be reopened, but the documented fallback —
    // replay into a fresh engine via wal_records — still applies when the
    // log region survives. Here we assert the *typed* failure mode: open
    // without a manifest is an error, not silent data loss.
    let guard = TempDir::new("oblidb-crash-early").unwrap();
    let spec = SubstrateSpec::Disk { dir: Some(guard.path().join("db")) };
    {
        let mut db = oblidb::database_on(&spec, wal_config()).unwrap();
        db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 2)").unwrap();
    }
    assert!(oblidb::database_open(&spec, wal_config()).is_err());
}
