//! Cross-engine equivalence: ObliDB under every storage method, the
//! Opaque-style baseline, and the plain engine must return the same
//! answers on the same workloads. (Performance differs; answers must not.)

use oblidb::baselines::opaque::OpaqueEngine;
use oblidb::baselines::plain::PlainTable;
use oblidb::core::exec::AggFunc;
use oblidb::core::predicate::{CmpOp, Predicate};
use oblidb::core::{Database, DbConfig, StorageMethod, Value};
use oblidb::workloads::{bdb, synthetic};

const N: usize = 600;

fn sorted_ids(rows: &[Vec<Value>], col: usize) -> Vec<i64> {
    let mut out: Vec<i64> = rows.iter().map(|r| r[col].as_int().unwrap()).collect();
    out.sort_unstable();
    out
}

#[test]
fn selection_equivalent_across_engines() {
    let rows = synthetic::table(N, 8, 3);
    let schema = synthetic::schema(8);
    let pred = |s: &oblidb::core::Schema| {
        Predicate::cmp(s, "val", CmpOp::Lt, Value::Int((N / 4) as i64)).unwrap()
    };

    // Reference: plain engine.
    let plain = PlainTable::new(schema.clone(), rows.clone());
    let expected = sorted_ids(&plain.select(&pred(&plain.schema)), 0);

    // ObliDB under each storage method.
    for method in [StorageMethod::Flat, StorageMethod::Indexed, StorageMethod::Both] {
        let mut db = Database::new(DbConfig::default());
        db.create_table_with_rows("t", schema.clone(), method, Some("id"), &rows, N as u64)
            .unwrap();
        let out = db.execute(&format!("SELECT * FROM t WHERE val < {}", N / 4)).unwrap();
        assert_eq!(sorted_ids(out.rows(), 0), expected, "{method:?}");
    }

    // Opaque baseline.
    let mut eng = OpaqueEngine::new(1 << 20, 9);
    let mut t = eng.load_table(schema.clone(), &rows).unwrap();
    let mut out = eng.select(&mut t, &pred(&schema)).unwrap();
    let got = out.collect_rows(&mut eng.host).unwrap();
    assert_eq!(sorted_ids(&got, 0), expected, "opaque");
}

#[test]
fn aggregates_equivalent_across_engines() {
    let rows = synthetic::table(N, 8, 5);
    let schema = synthetic::schema(8);
    let pred = Predicate::cmp(&schema, "id", CmpOp::Ge, Value::Int(100)).unwrap();

    let plain = PlainTable::new(schema.clone(), rows.clone());
    let expected_sum = plain.aggregate(AggFunc::Sum, Some(1), &pred);
    let expected_count = plain.aggregate(AggFunc::Count, None, &pred);

    let mut db = Database::new(DbConfig::default());
    db.create_table_with_rows("t", schema.clone(), StorageMethod::Flat, None, &rows, N as u64)
        .unwrap();
    let out = db.execute("SELECT SUM(val), COUNT(*) FROM t WHERE id >= 100").unwrap();
    assert_eq!(out.rows()[0][0], expected_sum);
    assert_eq!(out.rows()[0][1], expected_count);

    let mut eng = OpaqueEngine::new(1 << 20, 9);
    let mut t = eng.load_table(schema, &rows).unwrap();
    assert_eq!(eng.aggregate(&mut t, AggFunc::Sum, Some(1), &pred).unwrap(), expected_sum);
}

#[test]
fn group_by_equivalent_across_engines() {
    let schema = oblidb::core::Schema::new(vec![
        oblidb::core::Column::new("g", oblidb::core::DataType::Int),
        oblidb::core::Column::new("v", oblidb::core::DataType::Int),
    ]);
    let rows: Vec<Vec<Value>> =
        (0..N as i64).map(|i| vec![Value::Int(i % 7), Value::Int(i)]).collect();

    let plain = PlainTable::new(schema.clone(), rows.clone());
    let expected = plain.group_aggregate(0, AggFunc::Sum, Some(1), &Predicate::True);

    let mut db = Database::new(DbConfig::default());
    db.create_table_with_rows("t", schema.clone(), StorageMethod::Flat, None, &rows, N as u64)
        .unwrap();
    let out = db.execute("SELECT g, SUM(v) FROM t GROUP BY g").unwrap();
    let got: Vec<(Value, Value)> =
        out.rows().iter().map(|r| (r[0].clone(), r[1].clone())).collect();
    assert_eq!(got, expected);

    let mut eng = OpaqueEngine::new(1 << 20, 9);
    let mut t = eng.load_table(schema, &rows).unwrap();
    let mut opaque_out =
        eng.group_aggregate(&mut t, 0, AggFunc::Sum, Some(1), &Predicate::True).unwrap();
    let mut got: Vec<(Value, Value)> = opaque_out
        .collect_rows(&mut eng.host)
        .unwrap()
        .iter()
        .map(|r| (r[0].clone(), r[1].clone()))
        .collect();
    got.sort_by_key(|(g, _)| g.as_int().unwrap());
    assert_eq!(got, expected);
}

#[test]
fn bdb_q3_equivalent_to_plain_reference() {
    // Scaled-down BDB Q3: join + date filter + aggregates.
    let scale = 400;
    let rankings = bdb::rankings(scale, 11);
    let visits = bdb::uservisits(scale, scale, 11);

    // Plain reference.
    let pr = PlainTable::new(bdb::rankings_schema(), rankings.clone());
    let pv = PlainTable::new(bdb::uservisits_schema(), visits.clone());
    let filtered: Vec<Vec<Value>> =
        pv.rows.iter().filter(|r| r[3].as_int().unwrap() < bdb::Q3_DATE_CUTOFF).cloned().collect();
    let pv_f = PlainTable::new(bdb::uservisits_schema(), filtered);
    let joined = pr.join(0, &pv_f, 2);
    let n_joined = joined.len();
    let sum_rev: f64 = joined.iter().map(|r| r[7].as_float().unwrap()).sum();
    let avg_rank: f64 =
        joined.iter().map(|r| r[1].as_int().unwrap() as f64).sum::<f64>() / n_joined as f64;

    // ObliDB.
    let mut db = Database::new(DbConfig::default());
    db.create_table_with_rows(
        "rankings",
        bdb::rankings_schema(),
        StorageMethod::Flat,
        None,
        &rankings,
        scale as u64,
    )
    .unwrap();
    db.create_table_with_rows(
        "uservisits",
        bdb::uservisits_schema(),
        StorageMethod::Flat,
        None,
        &visits,
        scale as u64,
    )
    .unwrap();
    let out = db.execute(&bdb::q3_sql()).unwrap();
    let got_avg = out.rows()[0][0].as_float().unwrap();
    let got_sum = out.rows()[0][1].as_float().unwrap();
    assert!((got_avg - avg_rank).abs() < 1e-6, "avg {got_avg} vs {avg_rank}");
    assert!((got_sum - sum_rev).abs() < 1e-3, "sum {got_sum} vs {sum_rev}");
}

#[test]
fn mixed_mutations_keep_storages_equivalent() {
    // Interleave inserts/updates/deletes on a Both table; flat and index
    // reads must agree afterwards.
    let mut db = Database::new(DbConfig::default());
    db.execute("CREATE TABLE t (k INT, v INT) STORAGE = BOTH INDEX ON k CAPACITY 256").unwrap();
    for i in 0..60 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 2)).unwrap();
    }
    db.execute("DELETE FROM t WHERE k >= 50").unwrap();
    db.execute("UPDATE t SET v = -1 WHERE k < 10").unwrap();
    for i in 100..110 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, 7)")).unwrap();
    }

    // Point read through the index.
    let a = db.execute("SELECT * FROM t WHERE k = 105").unwrap();
    assert!(a.plan.used_index);
    assert_eq!(a.rows()[0][1], Value::Int(7));
    // Scan through the flat copy (non-key predicate).
    let b = db.execute("SELECT * FROM t WHERE v = -1").unwrap();
    assert!(!b.plan.used_index);
    assert_eq!(b.len(), 10);
    assert_eq!(db.table_rows("t").unwrap(), 60);
}
