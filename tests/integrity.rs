//! End-to-end integrity (paper §2.3, §3): the engine must catch any OS
//! tampering — bit flips, block shuffling, replays/rollbacks — on its way
//! through a real query.

use oblidb::core::{Database, DbConfig, DbError, StorageMethod, Value};
use oblidb::enclave::RegionId;

fn setup() -> Database {
    let mut db = Database::new(DbConfig::default());
    let schema = oblidb::core::Schema::new(vec![
        oblidb::core::Column::new("k", oblidb::core::DataType::Int),
        oblidb::core::Column::new("v", oblidb::core::DataType::Int),
    ]);
    let rows: Vec<Vec<Value>> =
        (0..32i64).map(|i| vec![Value::Int(i), Value::Int(i * 5)]).collect();
    db.create_table_with_rows("t", schema, StorageMethod::Flat, None, &rows, 32).unwrap();
    db
}

// The first table created in a fresh database occupies region 0.
const TABLE_REGION: RegionId = RegionId(0);

fn is_tamper(err: DbError) -> bool {
    matches!(err, DbError::Storage(oblidb::storage::StorageError::TamperDetected { .. }))
}

#[test]
fn queries_fail_after_bit_flip() {
    let mut db = setup();
    db.host_mut().adversary_corrupt(TABLE_REGION, 5, |b| b[20] ^= 0x40);
    let err = db.execute("SELECT * FROM t WHERE k = 1").unwrap_err();
    assert!(is_tamper(err));
}

#[test]
fn queries_fail_after_block_shuffle() {
    let mut db = setup();
    db.host_mut().adversary_swap(TABLE_REGION, 2, 9);
    let err = db.execute("SELECT COUNT(*) FROM t").unwrap_err();
    assert!(is_tamper(err));
}

#[test]
fn queries_fail_after_rollback() {
    let mut db = setup();
    // Snapshot a block, let the engine update it, then roll it back.
    let snapshot = db.host_mut().adversary_snapshot(TABLE_REGION, 3).unwrap();
    db.execute("UPDATE t SET v = 999 WHERE k = 3").unwrap();
    db.host_mut().adversary_restore(TABLE_REGION, 3, snapshot);
    let err = db.execute("SELECT * FROM t WHERE v = 999").unwrap_err();
    assert!(is_tamper(err), "stale (validly sealed) block must be rejected");
}

#[test]
fn mutations_also_detect_tampering() {
    let mut db = setup();
    db.host_mut().adversary_corrupt(TABLE_REGION, 0, |b| b[0] ^= 1);
    let err = db.execute("DELETE FROM t WHERE k = 31").unwrap_err();
    assert!(is_tamper(err));
}

#[test]
fn untouched_database_keeps_working() {
    // Sanity: the adversary APIs themselves don't break anything when
    // they restore the original bytes.
    let mut db = setup();
    let snap = db.host_mut().adversary_snapshot(TABLE_REGION, 4).unwrap();
    db.host_mut().adversary_restore(TABLE_REGION, 4, snap);
    let out = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(out.rows()[0][0], Value::Int(32));
}

#[test]
fn index_tamper_detected_through_oram() {
    let mut db = Database::new(DbConfig::default());
    let schema = oblidb::core::Schema::new(vec![
        oblidb::core::Column::new("k", oblidb::core::DataType::Int),
        oblidb::core::Column::new("v", oblidb::core::DataType::Int),
    ]);
    let rows: Vec<Vec<Value>> = (0..64i64).map(|i| vec![Value::Int(i), Value::Int(i)]).collect();
    db.create_table_with_rows("t", schema, StorageMethod::Indexed, Some("k"), &rows, 64).unwrap();
    // Corrupt one ORAM bucket; a point query reads random paths, so
    // corrupt the root bucket (index 0), which every path includes.
    db.host_mut().adversary_corrupt(TABLE_REGION, 0, |b| b[15] ^= 0x80);
    let err = db.execute("SELECT * FROM t WHERE k = 10").unwrap_err();
    assert!(matches!(
        err,
        DbError::Tree(oblidb::btree::ObTreeError::Oram(oblidb::oram::OramError::Storage(
            oblidb::storage::StorageError::TamperDetected { .. }
        )))
    ));
}
