//! The `EnclaveMemory` seam: every engine layer is generic over its
//! untrusted block store. These tests drive the same oblivious workloads
//! over the payload-storing [`Host`] and the payload-free
//! [`CountingMemory`] and assert the adversary-visible cost — trace
//! length, access counts, byte counts — is identical, while the counting
//! substrate provably keeps no payload bytes.

use oblidb::core::planner::SelectAlgo;
use oblidb::core::predicate::{CmpOp, Predicate};
use oblidb::core::table::FlatTable;
use oblidb::core::types::{Column, DataType, Schema, Value};
use oblidb::core::{exec, Database, DbConfig, DbError};
use oblidb::crypto::aead::AeadKey;
use oblidb::enclave::{
    CountingMemory, EnclaveMemory, EnclaveRng, Host, OmBudget, DEFAULT_OM_BYTES,
};
use oblidb::oram::{PathOram, PosMapKind};

fn schema() -> Schema {
    Schema::new(vec![Column::new("id", DataType::Int), Column::new("v", DataType::Int)])
}

fn build_flat<M: EnclaveMemory>(host: &mut M, n: i64) -> FlatTable {
    let s = schema();
    let encoded: Vec<Vec<u8>> =
        (0..n).map(|i| s.encode_row(&[Value::Int(i), Value::Int(i * 3)]).unwrap()).collect();
    FlatTable::from_encoded_rows(host, AeadKey([1u8; 32]), s, &encoded, n as u64).unwrap()
}

/// A flat-table scan costs the same over both substrates: identical trace
/// (not just length — the full event sequence), identical byte counters.
#[test]
fn flat_scan_counts_match_host() {
    let mut host = Host::new();
    let mut counting = CountingMemory::new();

    let mut t_host = build_flat(&mut host, 64);
    let mut t_cnt = build_flat(&mut counting, 64);

    host.reset_stats();
    counting.reset_stats();
    host.start_trace();
    counting.start_trace();
    for i in 0..t_host.capacity() {
        t_host.read_row(&mut host, i).unwrap();
        t_cnt.read_row(&mut counting, i).unwrap();
    }
    let trace_host = host.take_trace();
    let trace_cnt = counting.take_trace();

    assert_eq!(trace_host.len(), trace_cnt.len());
    assert_eq!(trace_host, trace_cnt, "scan event sequences must be identical");
    assert_eq!(host.stats(), counting.stats(), "byte/access counters must agree");
}

/// An oblivious SELECT over `CountingMemory` produces the same trace
/// length as over `Host` — the whole operator stack is payload-blind.
#[test]
fn oblivious_select_counts_match_host() {
    let pred = Predicate::Cmp { col: 0, op: CmpOp::Lt, value: Value::Int(10) };

    let mut host = Host::new();
    let mut t_host = build_flat(&mut host, 32);
    host.start_trace();
    let out = exec::select_large(&mut host, &mut t_host, &pred, AeadKey([2u8; 32])).unwrap();
    let trace_host = host.take_trace();
    drop(out);

    let mut counting = CountingMemory::new();
    let mut t_cnt = build_flat(&mut counting, 32);
    counting.start_trace();
    let out = exec::select_large(&mut counting, &mut t_cnt, &pred, AeadKey([2u8; 32])).unwrap();
    let trace_cnt = counting.take_trace();
    drop(out);

    assert_eq!(trace_host.len(), trace_cnt.len());
    assert_eq!(trace_host, trace_cnt, "oblivious select traces must be identical");
}

/// Path ORAM accesses cost the same on both substrates. With a direct
/// position map (kept in enclave memory) the traces are identical event
/// by event; stats agree exactly.
#[test]
fn path_oram_counts_match_host() {
    let mut host = Host::new();
    let mut counting = CountingMemory::new();

    let mut oram_host = PathOram::new(
        &mut host,
        AeadKey([9u8; 32]),
        64,
        16,
        PosMapKind::Direct,
        &OmBudget::new(DEFAULT_OM_BYTES),
        EnclaveRng::seed_from_u64(42),
    )
    .unwrap();
    let mut oram_cnt = PathOram::new(
        &mut counting,
        AeadKey([9u8; 32]),
        64,
        16,
        PosMapKind::Direct,
        &OmBudget::new(DEFAULT_OM_BYTES),
        EnclaveRng::seed_from_u64(42),
    )
    .unwrap();

    host.reset_stats();
    counting.reset_stats();
    host.start_trace();
    counting.start_trace();
    for i in 0..64u64 {
        oram_host.write(&mut host, i, &[i as u8; 16]).unwrap();
        oram_cnt.write(&mut counting, i, &[i as u8; 16]).unwrap();
    }
    for i in (0..64u64).rev() {
        oram_host.read(&mut host, i).unwrap();
        oram_cnt.read(&mut counting, i).unwrap();
    }
    oram_host.dummy_access(&mut host).unwrap();
    oram_cnt.dummy_access(&mut counting).unwrap();

    let trace_host = host.take_trace();
    let trace_cnt = counting.take_trace();
    assert_eq!(trace_host.len(), trace_cnt.len());
    assert_eq!(trace_host, trace_cnt, "direct-posmap ORAM traces must be identical");
    assert_eq!(host.stats(), counting.stats());
    assert_eq!(oram_host.stats().accesses, oram_cnt.stats().accesses);
}

/// With a recursive position map the leaf values live in (dropped)
/// payloads, so individual paths may differ — but the access *count* per
/// operation is a public constant and must still match exactly.
#[test]
fn recursive_oram_access_counts_match_host() {
    let kind = PosMapKind::Recursive { entries_per_block: 8 };
    let om = OmBudget::new(DEFAULT_OM_BYTES);

    let mut host = Host::new();
    let mut oram = PathOram::new(
        &mut host,
        AeadKey([3u8; 32]),
        64,
        16,
        kind,
        &om,
        EnclaveRng::seed_from_u64(7),
    )
    .unwrap();
    host.reset_stats();
    for i in 0..32u64 {
        oram.write(&mut host, i, &[1u8; 16]).unwrap();
        oram.read(&mut host, i).unwrap();
    }
    let host_accesses = host.stats().total_accesses();

    let om = OmBudget::new(DEFAULT_OM_BYTES);
    let mut counting = CountingMemory::new();
    let mut oram = PathOram::new(
        &mut counting,
        AeadKey([3u8; 32]),
        64,
        16,
        kind,
        &om,
        EnclaveRng::seed_from_u64(7),
    )
    .unwrap();
    counting.reset_stats();
    for i in 0..32u64 {
        oram.write(&mut counting, i, &[1u8; 16]).unwrap();
        oram.read(&mut counting, i).unwrap();
    }
    assert_eq!(host_accesses, counting.stats().total_accesses());
}

/// The full engine runs over `CountingMemory`: same SQL, same forced
/// plan, same trace length as the `Host`-backed engine — a fast cost
/// model for capacity planning without touching a byte of data.
#[test]
fn database_cost_model_matches_host() {
    fn run<M: EnclaveMemory>(mut db: Database<M>) -> usize {
        db.execute("CREATE TABLE t (id INT, v INT) CAPACITY 32").unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 2)).unwrap();
        }
        db.start_trace();
        db.execute("SELECT * FROM t WHERE id < 7").unwrap();
        db.take_trace().len()
    }

    let mut config = DbConfig::default();
    // Force one size-oblivious operator so the plan does not depend on the
    // (payload-derived) match count, which CountingMemory cannot see.
    config.planner.force_select = Some(SelectAlgo::Large);

    let host_len = run(Database::new(config.clone()));
    let counting_len = run(Database::with_memory(CountingMemory::new(), config));
    assert_eq!(host_len, counting_len);
}

/// Without a size-oblivious plan, a payload-free engine must refuse to
/// plan (scan statistics live in dropped payloads) rather than silently
/// produce a diverging trace.
#[test]
fn adaptive_planner_rejects_payload_free_memory() {
    let mut db = Database::with_memory(CountingMemory::new(), DbConfig::default());
    db.execute("CREATE TABLE t (id INT, v INT) CAPACITY 32").unwrap();
    db.execute("INSERT INTO t VALUES (1, 2)").unwrap();
    let err = db.execute("SELECT * FROM t WHERE id < 7").unwrap_err();
    assert!(matches!(err, DbError::Unsupported(_)), "got {err:?}");
}

/// Joins must refuse adaptive planning payload-free, and with a pinned
/// operator the full join pipeline (push-down select included) must
/// produce the identical trace on both substrates.
#[test]
fn forced_join_cost_model_matches_host() {
    use oblidb::core::planner::JoinAlgo;

    fn run<M: EnclaveMemory>(mut db: Database<M>) -> (usize, Vec<u64>) {
        db.execute("CREATE TABLE a (k INT, x INT) CAPACITY 32").unwrap();
        db.execute("CREATE TABLE b (k INT, y INT) CAPACITY 64").unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO a VALUES ({i}, {i})")).unwrap();
        }
        for i in 0..40 {
            db.execute(&format!("INSERT INTO b VALUES ({}, {i})", i % 20)).unwrap();
        }
        db.start_trace();
        let out = db.execute("SELECT * FROM a JOIN b ON a.k = b.k WHERE x >= 0").unwrap();
        let trace = db.take_trace();
        (trace.len(), out.plan.intermediate_rows.clone())
    }

    let mut config = DbConfig::default();
    config.planner.force_select = Some(SelectAlgo::Large);

    // Without a pinned join the payload-free engine must refuse.
    let mut db = Database::with_memory(CountingMemory::new(), config.clone());
    db.execute("CREATE TABLE a (k INT, x INT) CAPACITY 8").unwrap();
    db.execute("CREATE TABLE b (k INT, y INT) CAPACITY 8").unwrap();
    let err = db.execute("SELECT * FROM a JOIN b ON a.k = b.k").unwrap_err();
    assert!(matches!(err, DbError::Unsupported(_)), "got {err:?}");

    // With a pinned operator, traces match event-count for event-count.
    for algo in [JoinAlgo::Opaque, JoinAlgo::ZeroOm] {
        let mut config = config.clone();
        config.planner.force_join = Some(algo);
        let (host_len, _) = run(Database::new(config.clone()));
        let (cnt_len, _) = run(Database::with_memory(CountingMemory::new(), config));
        assert_eq!(host_len, cnt_len, "{algo:?} trace length diverged");
    }
}

/// Unpadded GROUP BY sizes output by a payload-derived group count, so
/// a payload-free engine must refuse it (padding mode stays allowed).
#[test]
fn group_by_rejects_payload_free_memory_without_padding() {
    let mut config = DbConfig::default();
    config.planner.force_select = Some(SelectAlgo::Large);
    let mut db = Database::with_memory(CountingMemory::new(), config);
    db.execute("CREATE TABLE t (grp INT, v INT) CAPACITY 16").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    let err = db.execute("SELECT grp, SUM(v) FROM t GROUP BY grp").unwrap_err();
    assert!(matches!(err, DbError::Unsupported(_)), "got {err:?}");
}

/// Indexed storage cannot run payload-free (B+ tree routing state lives
/// in payloads) and must say so with a typed error, not a panic.
#[test]
fn indexed_storage_rejects_payload_free_memory() {
    let mut db = Database::with_memory(CountingMemory::new(), DbConfig::default());
    db.execute("CREATE TABLE flat_ok (id INT, v INT)").unwrap();
    let err = db
        .execute("CREATE TABLE t (id INT, v INT) STORAGE = INDEXED INDEX ON id CAPACITY 32")
        .unwrap_err();
    assert!(matches!(err, DbError::Unsupported(_)), "got {err:?}");
    let err = db
        .execute("CREATE TABLE u (id INT, v INT) STORAGE = BOTH INDEX ON id CAPACITY 32")
        .unwrap_err();
    assert!(matches!(err, DbError::Unsupported(_)), "got {err:?}");
}

/// WAL recovery reads statements out of payloads, so a payload-free
/// engine must refuse it (appends still count correctly).
#[test]
fn wal_recovery_rejects_payload_free_memory() {
    let config =
        DbConfig { wal: Some(oblidb::core::wal::WalConfig::default()), ..DbConfig::default() };
    let mut db = Database::with_memory(CountingMemory::new(), config);
    db.execute("CREATE TABLE t (k INT) CAPACITY 8").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let err = db.wal_records().unwrap_err();
    assert!(matches!(err, DbError::Unsupported(_)), "got {err:?}");
}

/// `CountingMemory` really keeps no payloads: what you write is not what
/// you read back (reads are zeros), while `Host` round-trips bytes.
#[test]
fn counting_memory_drops_payloads() {
    let mut counting = CountingMemory::new();
    let region = counting.alloc_region(2, 4).unwrap();
    counting.write(region, 0, &[0xAB; 4]).unwrap();
    assert_eq!(counting.read(region, 0).unwrap(), &[0, 0, 0, 0]);

    let mut host = Host::new();
    let region = EnclaveMemory::alloc_region(&mut host, 2, 4).unwrap();
    EnclaveMemory::write(&mut host, region, 0, &[0xAB; 4]).unwrap();
    assert_eq!(EnclaveMemory::read(&mut host, region, 0).unwrap(), &[0xAB; 4]);
}
