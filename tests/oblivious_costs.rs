//! Cost-exactness and distributional checks: the public budget formulas
//! must match observed behaviour exactly, and ORAM leaf choices must look
//! uniform — the quantitative side of the obliviousness argument.

use oblidb::btree::{ObTree, OpKind};
use oblidb::crypto::aead::AeadKey;
use oblidb::enclave::{AccessKind, EnclaveRng, Host, OmBudget, DEFAULT_OM_BYTES};
use oblidb::oram::{PathOram, PosMapKind};

/// Every tree operation performs exactly `op_budget(op)` ORAM accesses —
/// not at most, exactly. (Each ORAM access is `2 × path_len` bucket
/// accesses on the host.)
#[test]
fn tree_ops_hit_their_budgets_exactly() {
    let mut host = Host::new();
    let om = OmBudget::new(DEFAULT_OM_BYTES);
    let mut tree = ObTree::new(
        &mut host,
        AeadKey([1u8; 32]),
        500,
        16,
        8,
        PosMapKind::Direct,
        &om,
        EnclaveRng::seed_from_u64(5),
    )
    .unwrap();
    for i in 0..200u64 {
        tree.insert(&mut host, (i * 5) as u128, &[0u8; 16]).unwrap();
    }

    // Bucket accesses per ORAM access: read path + write path.
    let per_access = {
        host.reset_stats();
        tree.get(&mut host, 0).unwrap();
        let total = host.stats().total_accesses();
        assert_eq!(total % tree.op_budget(OpKind::Get), 0, "whole ORAM accesses only");
        total / tree.op_budget(OpKind::Get)
    };

    let cases: Vec<(OpKind, Box<dyn FnMut(&mut Host, &mut ObTree)>)> = vec![
        (
            OpKind::Get,
            Box::new(|h: &mut Host, t: &mut ObTree| {
                t.get(h, 123).unwrap();
            }),
        ),
        (
            OpKind::Update,
            Box::new(|h: &mut Host, t: &mut ObTree| {
                t.update(h, 10, &[7u8; 16]).unwrap();
            }),
        ),
        (
            OpKind::Insert,
            Box::new(|h: &mut Host, t: &mut ObTree| {
                t.insert(h, 1_000_001, &[7u8; 16]).unwrap();
            }),
        ),
        (
            OpKind::Delete,
            Box::new(|h: &mut Host, t: &mut ObTree| {
                t.delete(h, 1_000_001).unwrap();
            }),
        ),
    ];
    for (op, mut run) in cases {
        let budget = tree.op_budget(op);
        host.reset_stats();
        run(&mut host, &mut tree);
        let observed = host.stats().total_accesses();
        assert_eq!(
            observed,
            budget * per_access,
            "{op:?}: observed {observed} accesses, budget {budget} ORAM ops x {per_access}"
        );
    }
}

/// ORAM reads of a single address over time must touch leaf buckets
/// near-uniformly (leaf remapping works); a skew here would be a
/// frequency side channel.
#[test]
fn oram_leaf_distribution_is_uniform() {
    let mut host = Host::new();
    let om = OmBudget::new(DEFAULT_OM_BYTES);
    let mut oram = PathOram::new(
        &mut host,
        AeadKey([2u8; 32]),
        64,
        16,
        PosMapKind::Direct,
        &om,
        EnclaveRng::seed_from_u64(11),
    )
    .unwrap();
    oram.write(&mut host, 7, &[1u8; 16]).unwrap();

    // Collect the leaf-level bucket of each access's read path.
    let leaves = 64u64;
    let leaf_base = leaves - 1; // complete tree: leaf level starts at 2^h - 1
    let trials = 1280u64;
    let mut counts = vec![0u64; leaves as usize];
    for _ in 0..trials {
        host.start_trace();
        oram.read(&mut host, 7).unwrap();
        let trace = host.take_trace();
        let leaf = trace
            .0
            .iter()
            .filter(|e| e.kind == AccessKind::Read)
            .map(|e| e.index)
            .find(|i| *i >= leaf_base)
            .expect("every path reaches a leaf");
        counts[(leaf - leaf_base) as usize] += 1;
    }

    // Chi-square against uniform: 63 dof, reject far above ~120.
    let expected = trials as f64 / leaves as f64;
    let chi2: f64 = counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
    assert!(chi2 < 120.0, "leaf distribution skewed: chi^2 = {chi2:.1}, counts {counts:?}");
}

/// The number of *distinct* untrusted access counts across a mixed batch
/// of point operations is exactly the number of op types — nothing about
/// the keys or hit/miss shows up.
#[test]
fn mixed_workload_shows_only_op_types() {
    let mut host = Host::new();
    let om = OmBudget::new(DEFAULT_OM_BYTES);
    let mut tree = ObTree::new(
        &mut host,
        AeadKey([3u8; 32]),
        400,
        16,
        8,
        PosMapKind::Direct,
        &om,
        EnclaveRng::seed_from_u64(9),
    )
    .unwrap();
    for i in 0..150u64 {
        tree.insert(&mut host, i as u128 * 3, &[0u8; 16]).unwrap();
    }
    let height = tree.height();

    let mut distinct = std::collections::BTreeMap::new();
    let mut rng = EnclaveRng::seed_from_u64(1);
    for step in 0..60u32 {
        let key = rng.below(1000) as u128;
        host.reset_stats();
        let op = match step % 3 {
            0 => {
                tree.get(&mut host, key).unwrap();
                "get"
            }
            1 => {
                tree.update(&mut host, key, &[1u8; 16]).unwrap();
                "update"
            }
            _ => {
                tree.get(&mut host, key * 7).unwrap();
                "get"
            }
        };
        assert_eq!(tree.height(), height, "height must not drift in this test");
        distinct
            .entry(host.stats().total_accesses())
            .or_insert_with(std::collections::BTreeSet::new)
            .insert(op);
    }
    // Each distinct count corresponds to exactly one op type and vice
    // versa: the access count partitions by op type only.
    assert_eq!(distinct.len(), 2, "expected exactly get/update cost classes: {distinct:?}");
    for ops in distinct.values() {
        assert_eq!(ops.len(), 1, "one cost class must map to one op type");
    }
}
