//! End-to-end obliviousness: the executable analogue of the paper's
//! Appendix A security theorem. For a fixed leakage profile — table sizes,
//! output sizes, physical plan — the untrusted-memory transcript must be
//! *identical* whatever the data values or query parameters.

use oblidb::core::{Database, DbConfig, StorageMethod, Value};
use oblidb::enclave::Trace;

fn fresh_db(rows: &[(i64, i64)], method: StorageMethod) -> Database {
    let mut db = Database::new(DbConfig::default());
    db.config_mut().planner.enable_continuous = false;
    let schema = oblidb::core::Schema::new(vec![
        oblidb::core::Column::new("k", oblidb::core::DataType::Int),
        oblidb::core::Column::new("v", oblidb::core::DataType::Int),
    ]);
    let values: Vec<Vec<Value>> =
        rows.iter().map(|(k, v)| vec![Value::Int(*k), Value::Int(*v)]).collect();
    db.create_table_with_rows("t", schema, method, Some("k"), &values, rows.len() as u64).unwrap();
    db
}

fn traced(db: &mut Database, sql: &str) -> (usize, Trace) {
    db.start_trace();
    let out = db.execute(sql).unwrap();
    (out.len(), db.take_trace())
}

/// Same |T|, same |R|, different data and parameters → identical traces.
#[test]
fn selection_trace_depends_only_on_sizes() {
    let data_a: Vec<(i64, i64)> = (0..64).map(|i| (i, i * 3)).collect();
    let data_b: Vec<(i64, i64)> = (0..64).map(|i| (i * 7, -i)).collect();

    let mut db_a = fresh_db(&data_a, StorageMethod::Flat);
    let (n_a, t_a) = traced(&mut db_a, "SELECT * FROM t WHERE k >= 10 AND k < 20");

    let mut db_b = fresh_db(&data_b, StorageMethod::Flat);
    let (n_b, t_b) = traced(&mut db_b, "SELECT * FROM t WHERE k >= 70 AND k < 140");

    assert_eq!(n_a, 10);
    assert_eq!(n_b, 10);
    assert_eq!(t_a, t_b, "equal-size selections must be indistinguishable");
}

/// Aggregates never leak which rows contributed.
#[test]
fn aggregate_trace_is_parameter_independent() {
    let data: Vec<(i64, i64)> = (0..50).map(|i| (i, i)).collect();
    let mut db = fresh_db(&data, StorageMethod::Flat);
    let (_, t1) = traced(&mut db, "SELECT SUM(v) FROM t WHERE k < 5");
    let mut db = fresh_db(&data, StorageMethod::Flat);
    let (_, t2) = traced(&mut db, "SELECT SUM(v) FROM t WHERE k >= 45");
    let mut db = fresh_db(&data, StorageMethod::Flat);
    let (_, t3) = traced(&mut db, "SELECT SUM(v) FROM t WHERE v <> 12345");
    assert_eq!(t1, t2);
    assert_eq!(t2, t3, "selectivity must not show in the fused aggregate trace");
}

/// UPDATE and DELETE rewrite every block whether or not it matches.
#[test]
fn mutation_traces_are_parameter_independent() {
    let data: Vec<(i64, i64)> = (0..40).map(|i| (i, i)).collect();

    let mut db = fresh_db(&data, StorageMethod::Flat);
    db.start_trace();
    db.execute("UPDATE t SET v = 0 WHERE k = 3").unwrap();
    let t1 = db.take_trace();

    let mut db = fresh_db(&data, StorageMethod::Flat);
    db.start_trace();
    db.execute("UPDATE t SET v = 9 WHERE v < 1000").unwrap();
    let t2 = db.take_trace();
    assert_eq!(t1, t2, "update trace must not depend on match count");

    let mut db = fresh_db(&data, StorageMethod::Flat);
    db.start_trace();
    db.execute("DELETE FROM t WHERE k = 0").unwrap();
    let d1 = db.take_trace();

    let mut db = fresh_db(&data, StorageMethod::Flat);
    db.start_trace();
    db.execute("DELETE FROM t WHERE k = 39").unwrap();
    let d2 = db.take_trace();
    assert_eq!(d1, d2, "delete trace must not depend on which row matched");
}

/// Joins: traces depend only on input sizes, not contents or selectivity.
#[test]
fn join_trace_depends_only_on_sizes() {
    let run = |offset: i64| {
        let mut db = Database::new(DbConfig::default());
        db.config_mut().planner.enable_continuous = false;
        db.execute("CREATE TABLE a (k INT, x INT) CAPACITY 32").unwrap();
        db.execute("CREATE TABLE b (k INT, y INT) CAPACITY 32").unwrap();
        for i in 0..16 {
            db.execute(&format!("INSERT INTO a VALUES ({}, {i})", i + offset)).unwrap();
        }
        for i in 0..24 {
            db.execute(&format!("INSERT INTO b VALUES ({}, {i})", (i % 8) + offset * 3)).unwrap();
        }
        db.start_trace();
        let out = db.execute("SELECT * FROM a JOIN b ON a.k = b.k").unwrap();
        (out.len(), db.take_trace())
    };
    // offset 0: many matches; offset 100: none. Identical traces.
    let (n0, t0) = run(0);
    let (n100, t100) = run(100);
    assert!(n0 > 0);
    assert_eq!(n100, 0);
    assert_eq!(t0, t100, "join selectivity must not show in the trace");
}

/// Index point lookups: constant untrusted-access count for any key,
/// present or absent (ORAM randomizes addresses; counts are the invariant).
#[test]
fn index_point_query_count_is_key_independent() {
    // Result sizes are leaked by design, so compare within equal-size
    // classes: any *hit* costs the same as any other hit, any *miss* the
    // same as any other miss — first/last/middle keys included.
    let data: Vec<(i64, i64)> = (0..128).map(|i| (i * 2, i)).collect();
    let mut db = fresh_db(&data, StorageMethod::Indexed);
    let mut hit_counts = std::collections::HashSet::new();
    for probe in [0i64, 2, 120, 254] {
        db.host_mut().reset_stats();
        let out = db.execute(&format!("SELECT * FROM t WHERE k = {probe}")).unwrap();
        assert_eq!(out.len(), 1);
        hit_counts.insert(db.host_mut().stats().total_accesses());
    }
    assert_eq!(hit_counts.len(), 1, "hit cost must not depend on the key");

    let mut miss_counts = std::collections::HashSet::new();
    for probe in [-7i64, 3, 255, 9999] {
        db.host_mut().reset_stats();
        let out = db.execute(&format!("SELECT * FROM t WHERE k = {probe}")).unwrap();
        assert_eq!(out.len(), 0);
        miss_counts.insert(db.host_mut().stats().total_accesses());
    }
    assert_eq!(miss_counts.len(), 1, "miss cost must not depend on the key");
}

/// Index inserts and deletes are padded to worst-case ORAM access counts.
#[test]
fn index_mutation_counts_are_padded() {
    let data: Vec<(i64, i64)> = (0..100).map(|i| (i * 10, i)).collect();
    let mut db = fresh_db(&data, StorageMethod::Indexed);

    // Deletes of present keys: cost must not depend on which key.
    // (The number of padded per-key delete operations equals the match
    // count, which is result-size leakage the paper allows — so hits and
    // misses are compared separately.)
    let mut hit_counts = std::collections::HashSet::new();
    for key in [10i64, 500, 980] {
        db.host_mut().reset_stats();
        let out = db.execute(&format!("DELETE FROM t WHERE k = {key}")).unwrap();
        assert_eq!(out.plan.output_rows, 1);
        hit_counts.insert(db.host_mut().stats().total_accesses());
    }
    assert_eq!(hit_counts.len(), 1, "delete-hit cost must not depend on the key");

    let mut miss_counts = std::collections::HashSet::new();
    for key in [5i64, 15, 123456] {
        db.host_mut().reset_stats();
        let out = db.execute(&format!("DELETE FROM t WHERE k = {key}")).unwrap();
        assert_eq!(out.plan.output_rows, 0);
        miss_counts.insert(db.host_mut().stats().total_accesses());
    }
    assert_eq!(miss_counts.len(), 1, "delete-miss cost must not depend on the key");
}

/// The planner's choice (the allowed plan leakage) is visible; with the
/// planner pinned, nothing else is.
#[test]
fn forced_algorithms_decouple_plan_from_data() {
    use oblidb::core::SelectAlgo;
    for algo in [SelectAlgo::Small, SelectAlgo::Large, SelectAlgo::Hash] {
        let run = |shift: i64| {
            let data: Vec<(i64, i64)> = (0..32).map(|i| (i, i)).collect();
            let mut db = fresh_db(&data, StorageMethod::Flat);
            db.config_mut().planner.force_select = Some(algo);
            db.start_trace();
            let out = db
                .execute(&format!("SELECT * FROM t WHERE k >= {shift} AND k < {}", shift + 8))
                .unwrap();
            assert_eq!(out.len(), 8);
            db.take_trace()
        };
        assert_eq!(run(0), run(20), "{algo:?}");
    }
}
