//! Parallel-execution conformance: turning on worker threads must be
//! invisible to everything except the clock. The same workload — scans,
//! every select algorithm, both join families (the sort-merge joins run
//! bitonic sort rounds), aggregates, mutations — over `threads = 1` and
//! `threads = 4` must return byte-identical results AND event-identical
//! adversary traces on every substrate family, because parallelism only
//! partitions the AEAD seal/open CPU inside a batch (and, for
//! worker-per-shard drives, hands each worker one whole shard whose
//! serial trace is unchanged).

use oblidb::core::{Database, DbConfig, ExecConfig, Row, SelectAlgo};
use oblidb::enclave::{EnclaveMemory, Host, ThreadPool, Trace};
use oblidb::substrates::{DiskMemory, ShardedMemory, SubstrateSpec};

fn config(threads: usize) -> DbConfig {
    DbConfig { exec: ExecConfig { threads }, ..DbConfig::default() }
}

/// Scan/select/join/sort workload, sized so batched region I/O crosses
/// the `PARALLEL_MIN_BLOCKS` threshold and the partitioned sealing path
/// actually runs when threads > 1. Returns every decoded result set and
/// the adversary's block-level trace.
fn workload<M: EnclaveMemory>(db: &mut Database<M>) -> (Vec<Vec<Row>>, Trace) {
    db.start_trace();
    let mut results: Vec<Vec<Row>> = Vec::new();
    let mut run = |db: &mut Database<M>, sql: &str| {
        let out = db.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        results.push(out.rows().to_vec());
    };

    run(db, "CREATE TABLE t (k INT, v INT) CAPACITY 256");
    for i in 0..160 {
        run(db, &format!("INSERT INTO t VALUES ({i}, {})", i * 3));
    }

    // Full scan plus every select algorithm (Large copies the whole
    // 256-block capacity — the widest batches in the suite).
    run(db, "SELECT * FROM t WHERE k >= 0");
    for algo in [
        SelectAlgo::Small,
        SelectAlgo::Large,
        SelectAlgo::Hash,
        SelectAlgo::Naive,
        SelectAlgo::Continuous,
    ] {
        db.config_mut().planner.force_select = Some(algo);
        run(db, "SELECT * FROM t WHERE k >= 16 AND k < 80");
    }
    db.config_mut().planner.force_select = None;

    // Joins: hash build/probe, and both sort-merge variants whose bitonic
    // sort rounds sweep the padded union table.
    run(db, "CREATE TABLE d (g INT, label CHAR(8)) CAPACITY 16");
    for g in 0..8 {
        run(db, &format!("INSERT INTO d VALUES ({g}, 'g{g}')"));
    }
    for join in ["Hash", "Opaque", "ZeroOm"] {
        let forced = match join {
            "Hash" => oblidb::core::JoinAlgo::Hash,
            "Opaque" => oblidb::core::JoinAlgo::Opaque,
            _ => oblidb::core::JoinAlgo::ZeroOm,
        };
        db.config_mut().planner.force_join = Some(forced);
        run(db, "SELECT * FROM d JOIN t ON d.g = t.k WHERE v < 18");
    }
    db.config_mut().planner.force_join = None;

    // Aggregates, group-by, mutations.
    run(db, "SELECT COUNT(*), SUM(v), MIN(k), MAX(k) FROM t WHERE k < 100");
    run(db, "SELECT v, COUNT(*) FROM t WHERE k < 20 GROUP BY v");
    run(db, "UPDATE t SET v = -1 WHERE k >= 150");
    run(db, "DELETE FROM t WHERE k >= 155");
    run(db, "SELECT * FROM t WHERE v = -1");

    (results, db.take_trace())
}

/// Byte-identical results and event-identical traces, serial vs 4
/// workers, across the substrate families (in-RAM, disk-backed,
/// sharded).
#[test]
fn parallel_results_and_traces_match_serial() {
    let specs = [
        SubstrateSpec::Host,
        SubstrateSpec::Disk { dir: None },
        SubstrateSpec::ShardedHost { shards: 4 },
    ];
    for spec in specs {
        let mut serial_db = Database::with_memory(spec.build().unwrap(), config(1));
        let (serial_results, serial_trace) = workload(&mut serial_db);
        assert!(!serial_trace.is_empty());

        let mut parallel_db = Database::with_memory(spec.build().unwrap(), config(4));
        let (parallel_results, parallel_trace) = workload(&mut parallel_db);

        let label = spec.profile_name();
        assert_eq!(serial_results, parallel_results, "{label}: results must be byte-identical");
        assert_eq!(serial_trace, parallel_trace, "{label}: traces must be event-identical");
    }
}

/// The same equivalence through the `OBLIDB_THREADS`-shaped config (the
/// explicit struct, not the env var — suites must not mutate the
/// process environment), against the plain-Host reference.
#[test]
fn parallel_host_matches_default_host() {
    let mut reference = Database::new(DbConfig::default());
    let (want_results, want_trace) = workload(&mut reference);

    let mut parallel = Database::with_memory(Host::new(), config(8));
    let (got_results, got_trace) = workload(&mut parallel);
    assert_eq!(want_results, got_results);
    assert_eq!(want_trace, got_trace);
}

/// Worker-per-shard drives: each worker owns one whole shard, so each
/// shard's own trace and counters are unchanged from a serial drive of
/// the same per-shard program — the adversary watching any shard (or all
/// of them) learns nothing from the thread count.
#[test]
fn per_shard_traces_unchanged_by_worker_count() {
    fn drive(pool: &ThreadPool) -> Vec<(Trace, Vec<u8>)> {
        let mut mem = ShardedMemory::from_fn(4, |_| Host::new());
        mem.for_each_shard(pool, |i, shard| {
            shard.start_trace();
            let r = shard.alloc_region(32, 64).unwrap();
            let fill = vec![i as u8 + 1; 32 * 64];
            shard.write_blocks(r, 0, &fill).unwrap();
            let mut buf = Vec::new();
            shard.read_blocks(r, 0, 32, &mut buf).unwrap();
            (shard.take_trace(), buf)
        })
    }
    let serial = drive(&ThreadPool::serial());
    let parallel = drive(&ThreadPool::new(4));
    assert_eq!(serial.len(), 4);
    for (shard, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.0, p.0, "shard {shard}: trace must not depend on worker count");
        assert_eq!(s.1, p.1, "shard {shard}: bytes must round-trip identically");
    }
}

/// Disk-backed worker-per-shard drive: the same invariant holds when
/// each worker's shard is a real on-disk store.
#[test]
fn per_shard_disk_traces_unchanged_by_worker_count() {
    fn drive(pool: &ThreadPool) -> Vec<Trace> {
        let mut mem = ShardedMemory::from_fn(2, |_| DiskMemory::temp().unwrap());
        mem.for_each_shard(pool, |i, shard| {
            shard.start_trace();
            let r = shard.alloc_region(16, 32).unwrap();
            shard.write_blocks(r, 0, &vec![i as u8; 16 * 32]).unwrap();
            shard.sync_region(r).unwrap();
            let mut buf = Vec::new();
            shard.read_blocks(r, 0, 16, &mut buf).unwrap();
            shard.take_trace()
        })
    }
    assert_eq!(drive(&ThreadPool::serial()), drive(&ThreadPool::new(2)));
}

/// A panicking worker takes the whole operation down with its own
/// payload — parallel failures are loud, never half-applied silence.
#[test]
fn worker_panic_propagates_out_of_the_pool() {
    let pool = ThreadPool::new(4);
    let jobs: Vec<_> = (0..8)
        .map(|i| {
            move || {
                if i == 5 {
                    panic!("worker 5 exploded");
                }
                i
            }
        })
        .collect();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(jobs)));
    let payload = caught.expect_err("panic must propagate");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "worker 5 exploded");
}
