//! End-to-end persistence acceptance: a database created on a disk-backed
//! substrate, persisted, dropped, and reopened via `database_open` must
//! return byte-identical query results *and traces*; tampered or
//! rolled-back region files must be rejected with typed integrity errors;
//! and allocation failure must surface as a typed error through every
//! substrate and the `Database` API — never a panic.

use oblidb::core::{Database, DbConfig, DbError, Row, Schema};
use oblidb::enclave::{EnclaveMemory, HostError, IoOp, RegionId, Trace};
use oblidb::storage::StorageError;
use oblidb::substrates::{SubstrateSpec, TempDir, REGION_META_FILE};

fn wal_config() -> DbConfig {
    DbConfig { wal: Some(Default::default()), ..DbConfig::default() }
}

fn populate(db: &mut Database<oblidb::substrates::AnySubstrate>) {
    db.execute("CREATE TABLE people (id INT, age INT, name CHAR(12)) CAPACITY 64").unwrap();
    for i in 0..24i64 {
        db.execute(&format!("INSERT INTO people VALUES ({i}, {}, 'p{i}')", 20 + i)).unwrap();
    }
    db.execute("UPDATE people SET age = 99 WHERE id >= 20").unwrap();
    db.execute("DELETE FROM people WHERE id = 23").unwrap();
}

const QUERY: &str = "SELECT id, age FROM people WHERE age < 40 ORDER BY id";

fn run_traced(
    db: &mut Database<oblidb::substrates::AnySubstrate>,
    query: &str,
) -> (Schema, Vec<Row>, Trace) {
    db.start_trace();
    let out = db.execute(query).unwrap();
    let trace = db.take_trace();
    (out.schema.clone(), out.rows().to_vec(), trace)
}

/// Create → populate → persist → query (traced) → drop → reopen → same
/// query must be byte-identical in rows, schema, and adversary trace.
fn reopen_roundtrip(spec: SubstrateSpec) {
    let label = spec.profile_name();
    let (schema1, rows1, trace1) = {
        let mut db = oblidb::database_on(&spec, wal_config()).unwrap();
        populate(&mut db);
        db.persist_to(spec.persist_dir().unwrap()).unwrap();
        let traced = run_traced(&mut db, QUERY);
        assert_eq!(traced.1.len(), 20, "{label}");
        traced
    };
    let mut reopened = oblidb::database_open(&spec, wal_config()).unwrap();
    let (schema2, rows2, trace2) = run_traced(&mut reopened, QUERY);
    assert_eq!(rows1, rows2, "{label}: reopened rows must be byte-identical");
    assert_eq!(schema1, schema2, "{label}: schemas must match");
    assert_eq!(trace1, trace2, "{label}: reopened traces must be byte-identical");
    // The reopened engine is fully live: it can mutate and re-persist.
    reopened.execute("INSERT INTO people VALUES (100, 1, 'new')").unwrap();
    assert_eq!(reopened.table_rows("people").unwrap(), 24);
    reopened.persist_to(spec.persist_dir().unwrap()).unwrap();
}

#[test]
fn reopen_is_byte_identical_on_disk() {
    let guard = TempDir::new("oblidb-persist-disk").unwrap();
    reopen_roundtrip(SubstrateSpec::Disk { dir: Some(guard.path().join("db")) });
}

#[test]
fn reopen_is_byte_identical_on_cached_disk() {
    let guard = TempDir::new("oblidb-persist-cached").unwrap();
    reopen_roundtrip(SubstrateSpec::CachedDisk {
        dir: Some(guard.path().join("db")),
        capacity_blocks: 32, // smaller than the table: evictions happen
    });
}

#[test]
fn reopen_is_byte_identical_on_sharded_disk() {
    let guard = TempDir::new("oblidb-persist-sharded").unwrap();
    reopen_roundtrip(SubstrateSpec::ShardedDisk { dir: Some(guard.path().join("db")), shards: 3 });
}

#[test]
fn tampered_region_file_is_rejected_with_typed_error() {
    let guard = TempDir::new("oblidb-persist-tamper").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    {
        let mut db = oblidb::database_on(&spec, wal_config()).unwrap();
        populate(&mut db);
        db.persist_to(&dir).unwrap();
    }
    // Region 0 is the WAL; region 1 is the table. Flip one ciphertext bit.
    let blk = dir.join("region-00000001.blk");
    let mut bytes = std::fs::read(&blk).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 1;
    std::fs::write(&blk, &bytes).unwrap();

    let mut db = oblidb::database_open(&spec, wal_config()).unwrap();
    let err = db.execute(QUERY).unwrap_err();
    assert!(
        matches!(err, DbError::Storage(StorageError::TamperDetected { region: RegionId(1), .. })),
        "tampering must surface as a typed integrity error, got {err:?}"
    );
}

#[test]
fn rolled_back_region_file_is_rejected_with_typed_error() {
    let guard = TempDir::new("oblidb-persist-rollback").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    {
        let mut db = oblidb::database_on(&spec, wal_config()).unwrap();
        populate(&mut db);
        db.persist_to(&dir).unwrap();
        // Snapshot the (validly sealed) table file at this checkpoint...
        let stale = std::fs::read(dir.join("region-00000001.blk")).unwrap();
        // ...advance the database state and checkpoint again...
        db.execute("UPDATE people SET age = 0 WHERE id < 5").unwrap();
        db.persist_to(&dir).unwrap();
        drop(db);
        // ...then roll the region file back to the stale version.
        std::fs::write(dir.join("region-00000001.blk"), &stale).unwrap();
    }
    let mut db = oblidb::database_open(&spec, wal_config()).unwrap();
    let err = db.execute(QUERY).unwrap_err();
    assert!(
        matches!(err, DbError::Storage(StorageError::TamperDetected { .. })),
        "a rolled-back region file must not authenticate, got {err:?}"
    );
}

#[test]
fn tampered_or_foreign_manifest_is_rejected_at_open() {
    let guard = TempDir::new("oblidb-persist-manifest").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    {
        let mut db = oblidb::database_on(&spec, wal_config()).unwrap();
        populate(&mut db);
        db.persist_to(&dir).unwrap();
    }
    // Wrong seed = wrong enclave identity: the sealing key differs.
    let wrong_seed = DbConfig { seed: 0xDEAD_BEEF, ..wal_config() };
    match oblidb::database_open(&spec, wrong_seed) {
        Err(oblidb::OpenError::Db(DbError::ManifestRejected(_))) => {}
        other => panic!("wrong seed must reject the manifest, got {other:?}", other = other.err()),
    }
    // A flipped byte in the manifest body fails authentication.
    let path = dir.join(oblidb::core::DB_MANIFEST_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 1;
    std::fs::write(&path, &bytes).unwrap();
    match oblidb::database_open(&spec, wal_config()) {
        Err(oblidb::OpenError::Db(DbError::ManifestRejected(_))) => {}
        other => {
            panic!("tampered manifest must be rejected, got {other:?}", other = other.err())
        }
    }
}

#[test]
fn swapped_region_file_fails_geometry_or_authentication() {
    // Replacing a region file with a *different* validly-sized file must
    // not be silently accepted either.
    let guard = TempDir::new("oblidb-persist-swap").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    {
        let mut db = oblidb::database_on(&spec, wal_config()).unwrap();
        populate(&mut db);
        db.execute("CREATE TABLE other (id INT, age INT, name CHAR(12)) CAPACITY 64").unwrap();
        db.execute("INSERT INTO other VALUES (1, 2, 'x')").unwrap();
        db.persist_to(&dir).unwrap();
    }
    // Swap the two same-geometry table files (regions 1 and 2).
    let a = dir.join("region-00000001.blk");
    let b = dir.join("region-00000002.blk");
    let (ab, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    std::fs::write(&a, &bb).unwrap();
    std::fs::write(&b, &ab).unwrap();
    let mut db = oblidb::database_open(&spec, wal_config()).unwrap();
    let err = db.execute(QUERY).unwrap_err();
    assert!(
        matches!(err, DbError::Storage(StorageError::TamperDetected { .. })),
        "regions use distinct keys; a transplanted file must fail, got {err:?}"
    );
}

#[test]
fn alloc_failure_surfaces_as_typed_error_never_a_panic() {
    // Squat a directory on the path of the next region file so creation
    // fails (effective even as root, unlike permission bits).
    let squat = |dir: &std::path::Path, id: u32| {
        std::fs::create_dir_all(dir.join(format!("region-{id:08}.blk"))).unwrap();
    };

    // Substrate level: every disk-backed substrate reports Io{op: Alloc}.
    let guard = TempDir::new("oblidb-allocfail").unwrap();
    for (name, spec) in [
        ("disk", SubstrateSpec::Disk { dir: Some(guard.path().join("disk")) }),
        (
            "cached-disk",
            SubstrateSpec::CachedDisk {
                dir: Some(guard.path().join("cached")),
                capacity_blocks: 8,
            },
        ),
        (
            "sharded-disk",
            SubstrateSpec::ShardedDisk { dir: Some(guard.path().join("sharded")), shards: 2 },
        ),
    ] {
        let mut m = spec.build().unwrap();
        let dir = spec.persist_dir().unwrap().to_path_buf();
        let dir = if name == "sharded-disk" { dir.join("shard-0") } else { dir };
        squat(&dir, 0);
        let err = m.alloc_region(4, 8).unwrap_err();
        assert!(matches!(err, HostError::Io { op: IoOp::Alloc, .. }), "{name}: {err:?}");
    }
    // In-memory substrates cannot fail allocation.
    let mut host = SubstrateSpec::Host.build().unwrap();
    host.alloc_region(4, 8).unwrap();
    let mut counting = oblidb::enclave::CountingMemory::new();
    counting.alloc_region(4, 8).unwrap();

    // Database API level: CREATE TABLE over a full/broken store is an
    // Err, not a panic.
    let dbdir = guard.path().join("dbfail");
    let spec = SubstrateSpec::Disk { dir: Some(dbdir.clone()) };
    let mut db = oblidb::database_on(&spec, DbConfig::default()).unwrap();
    squat(&dbdir, 0);
    let err = db.execute("CREATE TABLE t (k INT)").unwrap_err();
    assert!(
        matches!(err, DbError::Storage(StorageError::Host(HostError::Io { op: IoOp::Alloc, .. }))),
        "allocation failure must reach the Database API typed, got {err:?}"
    );

    // And a WAL-enabled engine whose very first allocation fails:
    // try_with_memory surfaces it.
    let waldir = guard.path().join("walfail");
    let walspec = SubstrateSpec::Disk { dir: Some(waldir.clone()) };
    // Build the (empty) substrate first; only then break its next
    // allocation — `create` refuses a dir that already looks populated.
    let substrate = walspec.build().unwrap();
    squat(&waldir, 0);
    match Database::try_with_memory(substrate, wal_config()) {
        Err(DbError::Storage(StorageError::Host(HostError::Io { op: IoOp::Alloc, .. }))) => {}
        Err(other) => panic!("expected Io{{Alloc}}, got {other:?}"),
        Ok(_) => panic!("WAL allocation over a broken store must fail"),
    }
}

#[test]
fn manifest_nonces_never_repeat_across_reopens() {
    // The manifest's sealing nonce must not come from the seed-derived
    // RNG: a reopened engine replays that stream from the same state, so
    // a deterministic nonce would repeat under the same sealing key —
    // exactly the create → persist → reopen → persist cycle below.
    let manifest_nonce = |dir: &std::path::Path| -> Vec<u8> {
        let blob = std::fs::read(dir.join(oblidb::core::DB_MANIFEST_FILE)).unwrap();
        blob[12..24].to_vec() // magic(8) ‖ version(4) ‖ nonce(12)
    };
    let guard = TempDir::new("oblidb-persist-nonce").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    {
        let mut db = oblidb::database_on(&spec, wal_config()).unwrap();
        db.execute("CREATE TABLE t (k INT)").unwrap();
        db.persist_to(&dir).unwrap();
    }
    let first = manifest_nonce(&dir);
    let mut db = oblidb::database_open(&spec, wal_config()).unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.persist_to(&dir).unwrap();
    let second = manifest_nonce(&dir);
    assert_ne!(first, second, "same key + repeated nonce would break the AEAD");
}

#[test]
fn reopening_a_walless_store_with_wal_config_enables_logging() {
    // A store persisted without a WAL, reopened by a caller who asks for
    // one: durability must be honored, not silently dropped.
    let guard = TempDir::new("oblidb-persist-latewal").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    {
        let mut db = oblidb::database_on(&spec, DbConfig::default()).unwrap();
        db.execute("CREATE TABLE t (k INT)").unwrap();
        db.persist_to(&dir).unwrap();
    }
    let mut db = oblidb::database_open(&spec, wal_config()).unwrap();
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    let log = db.wal_records().unwrap();
    assert_eq!(log, vec!["INSERT INTO t VALUES (7)".to_string()]);
}

#[test]
fn forged_region_table_is_a_typed_error_not_an_abort() {
    // regions.meta is untrusted input: implausible counts must fail as
    // InvalidData, never allocate hundreds of gigabytes or overflow.
    let guard = TempDir::new("oblidb-persist-forgedmeta").unwrap();
    let dir = guard.path().join("db");
    {
        let mut m = oblidb::substrates::DiskMemory::create(&dir).unwrap();
        let r = m.alloc_region(2, 8).unwrap();
        m.write(r, 0, &[0u8; 8]).unwrap();
        m.sync().unwrap();
    }
    let forge = |next_id: u32, live: u32, block_size: u64, blocks: u64| {
        let mut evil = Vec::new();
        evil.extend_from_slice(b"OBLIDBMT");
        evil.extend_from_slice(&1u32.to_le_bytes());
        evil.extend_from_slice(&next_id.to_le_bytes());
        evil.extend_from_slice(&live.to_le_bytes());
        if live > 0 {
            evil.extend_from_slice(&0u32.to_le_bytes());
            evil.extend_from_slice(&block_size.to_le_bytes());
            evil.extend_from_slice(&blocks.to_le_bytes());
        }
        std::fs::write(dir.join(REGION_META_FILE), &evil).unwrap();
    };
    // Huge id space; huge bitmap; overflowing geometry.
    for (next_id, live, block_size, blocks) in
        [(u32::MAX, 0, 0, 0), (1, 1, 8, u64::MAX), (1, 1, u64::MAX, u64::MAX / 2)]
    {
        forge(next_id, live, block_size, blocks);
        match oblidb::substrates::DiskMemory::open(&dir) {
            Ok(_) => panic!("forged region table must be rejected"),
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "{e}"),
        }
    }
}

#[test]
fn indexed_tables_refuse_persistence_with_typed_error() {
    let guard = TempDir::new("oblidb-persist-indexed").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    let mut db = oblidb::database_on(&spec, DbConfig::default()).unwrap();
    db.execute("CREATE TABLE t (k INT) STORAGE = INDEXED INDEX ON k CAPACITY 32").unwrap();
    assert!(matches!(db.persist_to(&dir), Err(DbError::Unsupported(_))));
}

#[test]
fn open_requires_a_persisted_store() {
    let guard = TempDir::new("oblidb-persist-missing").unwrap();
    let dir = guard.path().join("nothing");
    std::fs::create_dir_all(&dir).unwrap();
    // No region table, no manifest: substrate open fails cleanly.
    assert!(matches!(
        oblidb::database_open(&SubstrateSpec::Disk { dir: Some(dir.clone()) }, DbConfig::default()),
        Err(oblidb::OpenError::Io(_))
    ));
    // A synced store without a database manifest is also a typed error.
    {
        let mut m = oblidb::substrates::DiskMemory::create(dir.join("store")).unwrap();
        let r = m.alloc_region(1, 8).unwrap();
        m.write(r, 0, &[0u8; 8]).unwrap();
        m.sync().unwrap();
    }
    assert!(dir.join("store").join(REGION_META_FILE).exists());
    match oblidb::database_open(
        &SubstrateSpec::Disk { dir: Some(dir.join("store")) },
        DbConfig::default(),
    ) {
        Err(oblidb::OpenError::Db(DbError::ManifestRejected(_))) => {}
        other => panic!("missing manifest must be typed, got {other:?}", other = other.err()),
    }
    // Host specs have nothing to reopen.
    assert!(matches!(
        oblidb::database_open(&SubstrateSpec::Host, DbConfig::default()),
        Err(oblidb::OpenError::Io(_))
    ));
}

/// `database_on_calibrated` on a durable spec must write the
/// `oblidb.calibration` artifact next to the region files; a later
/// default-config `database_open` must reload exactly those weights
/// instead of re-deriving stock ones.
#[test]
fn calibration_artifact_survives_restart() {
    use oblidb::core::{CostModel, CostProfile, CALIBRATION_FILE};

    let guard = TempDir::new("oblidb-persist-calibration").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    {
        let mut db = oblidb::database_on_calibrated(&spec, wal_config()).unwrap();
        populate(&mut db);
        db.persist_to(&dir).unwrap();
    }
    assert!(dir.join(CALIBRATION_FILE).exists(), "calibrated open must persist the artifact");
    let saved = CostProfile::load_from(&dir).expect("persisted artifact must parse");
    assert_eq!(saved.name, spec.profile_name());

    // Reopen with an untouched default config: the persisted weights win.
    let mut reopened = oblidb::database_open(&spec, wal_config()).unwrap();
    assert_eq!(
        reopened.config_mut().planner.cost_model,
        CostModel::Measured(saved.clone()),
        "database_open must reload the persisted calibration"
    );
    assert_eq!(reopened.execute(QUERY).unwrap().len(), 20);

    // A second calibrated open loads the artifact instead of re-probing:
    // the weights stay bit-identical across restarts.
    let mut again = oblidb::database_open_with_report(&spec, wal_config()).unwrap().0;
    assert_eq!(again.config_mut().planner.cost_model, CostModel::Measured(saved.clone()));

    // An explicit cost model in the caller's config is never overridden.
    let mut cfg = wal_config();
    cfg.planner.cost_model = CostModel::ClosedForm;
    let mut pinned = oblidb::database_open(&spec, cfg).unwrap();
    assert_eq!(pinned.config_mut().planner.cost_model, CostModel::ClosedForm);
}
