//! Planner-parity properties for the cost-calibrated, CountingMemory-
//! driven planner:
//!
//! 1. **Estimate exactness** — `explain()`'s estimated block counts (a
//!    `CountingMemory` dry run) equal the measured actuals for *every*
//!    SELECT algorithm, forced one at a time.
//! 2. **Never worse than closed-form** — across randomized shapes, the
//!    cost-based choice's measured weighted cost never exceeds the
//!    closed-form choice's on `Host`.
//! 3. **Substrate-calibrated divergence** (acceptance) — the same query
//!    picks a different, and cheaper-by-weighted-crossings, operator under
//!    the disk profile than under the host profile; and the conformance
//!    property (byte-identical results + traces across substrates) holds
//!    through the prepare/execute path when the profiles agree.

use oblidb::core::plan::{PlanNode, SelectChoice};
use oblidb::core::planner::CostModel;
use oblidb::core::{CostProfile, Database, DbConfig, SelectAlgo};
use oblidb::enclave::EnclaveRng;

fn filter_of(root: &PlanNode) -> &oblidb::core::plan::FilterNode {
    root.find_filter().expect("plan has a filter stage")
}

fn build_db(config: DbConfig, rows: u64, modulus: i64) -> Database {
    let mut db = Database::new(config);
    db.execute(&format!("CREATE TABLE t (id INT, v INT) CAPACITY {rows}")).unwrap();
    for i in 0..rows as i64 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % modulus)).unwrap();
    }
    db
}

/// 1. Estimated block counts match `CountingMemory` actuals for every
///    SELECT algorithm — the dry run is exact, not approximate.
#[test]
fn estimates_match_actuals_for_every_select_algorithm() {
    for algo in [
        SelectAlgo::Small,
        SelectAlgo::Large,
        SelectAlgo::Continuous,
        SelectAlgo::Hash,
        SelectAlgo::Naive,
        SelectAlgo::Padded,
    ] {
        let mut config = DbConfig { om_bytes: 2048, ..DbConfig::default() };
        config.planner.force_select = Some(algo);
        let mut db = build_db(config, 96, 96);
        // Contiguous range so Continuous is valid too.
        let mut stmt = db.prepare("SELECT * FROM t WHERE id >= 16 AND id < 48").unwrap();
        let est = filter_of(stmt.plan().select_root().unwrap())
            .est
            .unwrap_or_else(|| panic!("{algo:?}: forced choice must still be costed"));
        let out = stmt.run().unwrap();
        assert_eq!(out.len(), 32, "{algo:?}");
        let actual = filter_of(stmt.plan().select_root().unwrap()).actual.unwrap();
        assert_eq!(
            (est.reads, est.writes, est.crossings),
            (actual.reads, actual.writes, actual.crossings),
            "{algo:?}: dry-run estimate must equal measured cost"
        );
    }
}

/// Padding mode: the padded estimate is exact too (pass count and output
/// size come from the public bound).
#[test]
fn padded_estimates_match_actuals() {
    let config = DbConfig {
        padding: Some(oblidb::core::padding::PaddingConfig::uniform(48)),
        ..DbConfig::default()
    };
    let mut db = build_db(config, 64, 64);
    let mut stmt = db.prepare("SELECT * FROM t WHERE id < 5").unwrap();
    let est = filter_of(stmt.plan().select_root().unwrap()).est.unwrap();
    stmt.run().unwrap();
    let actual = filter_of(stmt.plan().select_root().unwrap()).actual.unwrap();
    assert_eq!(
        (est.reads, est.writes, est.crossings),
        (actual.reads, actual.writes, actual.crossings)
    );
}

/// 2. Property: across randomized table sizes, OM budgets and
///    selectivities, the cost-based choice never costs more (measured,
///    host-weighted) than the closed-form choice would have.
#[test]
fn cost_based_choice_never_exceeds_closed_form() {
    let mut rng = EnclaveRng::seed_from_u64(0xC057_CA1B);
    let profile = CostProfile::host();
    for case in 0..12 {
        let rows = 32 + (rng.next_u64() % 160);
        let om = 64 + (rng.next_u64() % 4096) as usize;
        let cut = (rng.next_u64() % rows) as i64;
        let scattered = rng.next_u64() % 2 == 0;
        let query = if scattered {
            // Two runs → not continuous.
            format!(
                "SELECT * FROM t WHERE id < {} OR id >= {}",
                cut / 2,
                rows as i64 - (cut - cut / 2).max(1)
            )
        } else {
            format!("SELECT * FROM t WHERE id < {cut}")
        };

        let run_with = |model: CostModel| {
            let mut config = DbConfig { om_bytes: om, ..DbConfig::default() };
            config.planner.cost_model = model;
            let mut db = build_db(config, rows, rows as i64);
            let mut stmt = db.prepare(&query).unwrap();
            stmt.run().unwrap();
            let f = filter_of(stmt.plan().select_root().unwrap());
            (f.choice.algo().unwrap(), f.actual.unwrap())
        };
        let (costed_algo, costed) = run_with(CostModel::Measured(profile.clone()));
        let (closed_algo, closed) = run_with(CostModel::ClosedForm);
        assert!(
            costed.weighted <= closed.weighted + 1e-6,
            "case {case} ({query}): costed {costed_algo:?} = {} must not exceed \
             closed-form {closed_algo:?} = {}",
            costed.weighted,
            closed.weighted,
        );
    }
}

/// 3a. Acceptance: the same query picks a different operator under the
/// disk profile than under the host profile, and each choice is cheaper
/// than the other's under its own weighting — counted, not assumed.
#[test]
fn disk_and_host_profiles_pick_different_cheaper_operators() {
    let plan_with = |profile: CostProfile| {
        let mut config = DbConfig { om_bytes: 128, ..DbConfig::default() };
        config.planner.cost_model = CostModel::Measured(profile);
        let mut db = build_db(config, 512, 2);
        let mut stmt = db.prepare("SELECT * FROM t WHERE v = 1").unwrap();
        stmt.run().unwrap();
        let f = filter_of(stmt.plan().select_root().unwrap());
        let candidates = match &f.choice {
            SelectChoice::Chosen { candidates, .. } => candidates.clone(),
            other => panic!("expected a cost-chosen filter, got {other:?}"),
        };
        (f.choice.algo().unwrap(), candidates, f.actual.unwrap())
    };

    let (host_algo, host_candidates, host_actual) = plan_with(CostProfile::host());
    let (disk_algo, disk_candidates, disk_actual) = plan_with(CostProfile::disk());
    assert_ne!(
        host_algo, disk_algo,
        "the crossing price must flip the operator choice between substrates"
    );
    assert_eq!(host_algo, SelectAlgo::Hash, "cheap crossings favor fewest block accesses");
    assert_eq!(disk_algo, SelectAlgo::Small, "dear crossings favor fewest crossings");

    // Cheaper by counted weighted crossings, each under its own profile:
    // the disk choice beats the host choice when both are priced for disk,
    // and vice versa.
    let cost_of = |cands: &[oblidb::core::plan::CandidateCost], algo: SelectAlgo| {
        cands.iter().find(|c| c.algo == algo).map(|c| c.cost.weighted).unwrap()
    };
    assert!(cost_of(&disk_candidates, disk_algo) < cost_of(&disk_candidates, host_algo));
    assert!(cost_of(&host_candidates, host_algo) < cost_of(&host_candidates, disk_algo));

    // And the estimates the decisions rested on were exact.
    assert_eq!(cost_of(&host_candidates, host_algo), host_actual.weighted);
    assert_eq!(cost_of(&disk_candidates, disk_algo), disk_actual.weighted);
}

/// 3b. EXPLAIN SELECT works end to end and surfaces the per-substrate
/// divergence textually.
#[test]
fn explain_select_shows_the_calibrated_choice() {
    let explain_with = |profile: CostProfile| {
        let mut config = DbConfig { om_bytes: 128, ..DbConfig::default() };
        config.planner.cost_model = CostModel::Measured(profile);
        let mut db = build_db(config, 512, 2);
        let out = db.execute("EXPLAIN SELECT * FROM t WHERE v = 1").unwrap();
        out.rows().iter().map(|r| r[0].as_text().unwrap().to_string()).collect::<Vec<_>>()
    };
    let host = explain_with(CostProfile::host());
    let disk = explain_with(CostProfile::disk());
    assert!(host.iter().any(|l| l.contains("Filter [Hash]")), "{host:?}");
    assert!(disk.iter().any(|l| l.contains("Filter [Small]")), "{disk:?}");
    assert!(host.iter().any(|l| l.contains("candidates:")), "{host:?}");
}

/// Joins are costed by the same machinery: the chosen join's estimate
/// matches its measured cost (flat inputs make the estimate exact).
#[test]
fn join_estimates_match_actuals() {
    let mut db = Database::new(DbConfig::default());
    db.execute("CREATE TABLE d (k INT, name INT) CAPACITY 16").unwrap();
    db.execute("CREATE TABLE f (k INT, v INT) CAPACITY 48").unwrap();
    for i in 0..16 {
        db.execute(&format!("INSERT INTO d VALUES ({i}, {i})")).unwrap();
    }
    for i in 0..48 {
        db.execute(&format!("INSERT INTO f VALUES ({}, {i})", i % 16)).unwrap();
    }
    let mut stmt = db.prepare("SELECT * FROM d JOIN f ON d.k = f.k").unwrap();
    let (est, algo) = match stmt.plan().select_root().unwrap() {
        PlanNode::Join(j) => {
            (j.est.expect("join over flat inputs is costed at prepare"), j.choice.algo().unwrap())
        }
        other => panic!("expected join root, got {other:?}"),
    };
    let out = stmt.run().unwrap();
    assert_eq!(out.len(), 48);
    let actual = match stmt.plan().select_root().unwrap() {
        PlanNode::Join(j) => {
            assert_eq!(j.choice.algo().unwrap(), algo, "pinned choice survives run");
            j.actual.unwrap()
        }
        _ => unreachable!(),
    };
    assert_eq!(
        (est.reads, est.writes, est.crossings),
        (actual.reads, actual.writes, actual.crossings),
        "join dry-run estimate must equal measured cost"
    );
}
