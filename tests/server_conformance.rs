//! Serving conformance: the concurrent [`SharedDatabase`] front-end must
//! be indistinguishable from a single-owner [`Database`] for any serial
//! schedule — byte-identical results AND event-identical adversary
//! traces — on every substrate (in-RAM host, disk, sharded), and
//! concurrent sessions must converge to the serial-equivalent state with
//! the shared trace auditor silent. The top layer is exercised too: a
//! real TCP server over a disk store with interleaving clients.

use oblidb::core::audit::trace_hash;
use oblidb::core::{Database, DbConfig, SharedDatabase, Value};
use oblidb::enclave::{EnclaveMemory, Host};
use oblidb::server::client::{Connection, StatementResult};
use oblidb::server::server::{serve, ServerConfig};
use oblidb::substrates::{DiskMemory, ShardedMemory};

/// The statement mix: DDL, a burst of inserts, point/range/aggregate
/// selects, an update and a delete, then re-reads that observe them.
fn workload() -> Vec<String> {
    let mut stmts =
        vec!["CREATE TABLE t (id INT, v INT, tag CHAR(8)) STORAGE = FLAT CAPACITY 128".to_string()];
    for i in 0..24 {
        stmts.push(format!("INSERT INTO t VALUES ({i}, {}, 'g{}')", i * 7, i % 4));
    }
    stmts.extend(
        [
            "SELECT v FROM t WHERE id = 11",
            "SELECT id, v FROM t WHERE v > 100",
            "SELECT COUNT(*), SUM(v) FROM t WHERE id < 16",
            "SELECT tag, COUNT(*) FROM t GROUP BY tag",
            "UPDATE t SET v = -1 WHERE id >= 20",
            "DELETE FROM t WHERE id = 3",
            "SELECT id FROM t WHERE v = -1",
            "SELECT COUNT(*) FROM t",
        ]
        .map(str::to_string),
    );
    stmts
}

/// Replays [`workload`] through a single-owner engine and through a
/// round-robin pair of sessions on an identically configured shared
/// engine, asserting statement-for-statement identical results and
/// identical canonical run traces.
fn assert_serial_equivalence<M: EnclaveMemory + Send>(solo_store: M, shared_store: M) {
    let config = DbConfig::default();
    let mut solo = Database::with_memory(solo_store, config.clone());
    let shared = SharedDatabase::new(shared_store, config).unwrap();
    let mut sessions = [shared.session(), shared.session()];
    for (i, stmt) in workload().iter().enumerate() {
        solo.host_mut().start_trace();
        let a = solo.execute(stmt).unwrap_or_else(|e| panic!("solo {stmt}: {e}"));
        let solo_trace = solo.host_mut().take_trace();
        let (b, session_trace) = sessions[i % 2].execute_traced(stmt);
        let b = b.unwrap_or_else(|e| panic!("session {stmt}: {e}"));
        assert_eq!(a.rows(), b.rows(), "rows diverged for {stmt}");
        assert_eq!(a.schema, b.schema, "schema diverged for {stmt}");
        assert_eq!(a.rows_affected, b.rows_affected, "effects diverged for {stmt}");
        assert_eq!(
            trace_hash(&solo_trace),
            trace_hash(&session_trace),
            "canonical trace diverged for {stmt}"
        );
    }
}

#[test]
fn serial_sessions_match_single_owner_on_host() {
    assert_serial_equivalence(Host::new(), Host::new());
}

#[test]
fn serial_sessions_match_single_owner_on_disk() {
    assert_serial_equivalence(DiskMemory::temp().unwrap(), DiskMemory::temp().unwrap());
}

#[test]
fn serial_sessions_match_single_owner_on_sharded() {
    assert_serial_equivalence(
        ShardedMemory::from_fn(3, |_| Host::new()),
        ShardedMemory::from_fn(3, |_| Host::new()),
    );
}

/// N threads interleaving inserts with snapshot reads must converge to
/// the serial-equivalent row count with the shared auditor silent.
fn assert_concurrent_convergence<M: EnclaveMemory + Send + 'static>(store: M) {
    let config = DbConfig { audit: true, ..DbConfig::default() };
    let shared = SharedDatabase::new(store, config).unwrap();
    let mut setup = shared.session();
    setup.execute("CREATE TABLE t (id INT, v INT) STORAGE = FLAT CAPACITY 256").unwrap();
    for i in 0..10 {
        setup.execute(&format!("INSERT INTO t VALUES ({i}, {i})")).unwrap();
    }
    const WORKERS: u64 = 4;
    const PER_WORKER: u64 = 5;
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let mut session = shared.session();
            scope.spawn(move || {
                for i in 0..PER_WORKER {
                    let id = 1000 + w * PER_WORKER + i;
                    session.execute(&format!("INSERT INTO t VALUES ({id}, {id})")).unwrap();
                    // Snapshot reads overlap freely with other sessions.
                    let out = session.execute("SELECT COUNT(*) FROM t").unwrap();
                    assert_eq!(out.rows().len(), 1);
                    let out = session.execute(&format!("SELECT v FROM t WHERE id = {id}")).unwrap();
                    assert_eq!(out.rows(), &[vec![Value::Int(id as i64)]]);
                }
            });
        }
    });
    let out = shared.session().execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(out.rows(), &[vec![Value::Int((10 + WORKERS * PER_WORKER) as i64)]]);
    let report = shared.audit_report();
    assert_eq!(report.violations, 0, "{:?}", shared.audit_violations());
    assert!(report.shapes > 0, "auditor must have observed shapes");
}

#[test]
fn concurrent_sessions_converge_on_host() {
    assert_concurrent_convergence(Host::new());
}

#[test]
fn concurrent_sessions_converge_on_disk() {
    assert_concurrent_convergence(DiskMemory::temp().unwrap());
}

#[test]
fn concurrent_sessions_converge_on_sharded() {
    assert_concurrent_convergence(ShardedMemory::from_fn(4, |_| Host::new()));
}

/// Full stack over a durable substrate: a real TCP server on a disk
/// store, concurrent wire clients interleaving reads and writes, and the
/// merged metrics verb reporting both engine and server counters.
#[test]
fn served_disk_store_converges_over_tcp() {
    let db = SharedDatabase::new(DiskMemory::temp().unwrap(), DbConfig::default()).unwrap();
    let handle =
        serve(db, ServerConfig { addr: "127.0.0.1:0".to_string(), workers: 3, epoch: None })
            .unwrap();
    let addr = handle.addr().to_string();
    let mut setup = Connection::connect(&addr).unwrap();
    setup.execute("CREATE TABLE t (k INT, v INT) STORAGE = FLAT CAPACITY 128").unwrap();
    const CLIENTS: i64 = 3;
    const PER_CLIENT: i64 = 6;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut conn = Connection::connect(&addr).unwrap();
                for i in 0..PER_CLIENT {
                    let k = c * PER_CLIENT + i;
                    let r =
                        conn.execute(&format!("INSERT INTO t VALUES ({k}, {})", k * 2)).unwrap();
                    assert_eq!(r, StatementResult::RowsAffected(1));
                    match conn.execute(&format!("SELECT v FROM t WHERE k = {k}")).unwrap() {
                        StatementResult::Rows { rows, .. } => {
                            assert_eq!(rows, vec![vec![Value::Int(k * 2)]]);
                        }
                        other => panic!("expected rows, got {other:?}"),
                    }
                }
            });
        }
    });
    match setup.execute("SELECT COUNT(*) FROM t").unwrap() {
        StatementResult::Rows { rows, .. } => {
            assert_eq!(rows, vec![vec![Value::Int(CLIENTS * PER_CLIENT)]]);
        }
        other => panic!("expected count, got {other:?}"),
    }
    let json = setup.metrics().unwrap();
    for key in ["db_sessions", "server_lifetime_connections", "session_statements"] {
        assert!(json.contains(key), "metrics verb missing {key}: {json}");
    }
    let stats = handle.shutdown();
    assert_eq!(stats.connections, CLIENTS as u64 + 1);
}
