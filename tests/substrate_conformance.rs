//! Substrate conformance: the full engine must behave identically — byte-
//! identical query results, event-identical adversary traces — over every
//! [`EnclaveMemory`] substrate: in-RAM [`Host`], disk-backed
//! [`DiskMemory`], the write-back [`CachedMemory`] LRU, and round-robin
//! [`ShardedMemory`]. The substrates only change *where* sealed blocks
//! live and what backing traffic costs; the trusted protocol, and
//! therefore the adversary's view, must not move by one event.

use oblidb::core::wal::WalConfig;
use oblidb::core::{Database, DbConfig, Row, SelectAlgo};
use oblidb::enclave::{EnclaveMemory, Host, Trace};
use oblidb::substrates::{
    AnySubstrate, CachedMemory, DiskMemory, ShardedMemory, SubstrateSpec, TempDir,
};

fn wal_db_config() -> DbConfig {
    DbConfig { wal: Some(WalConfig::default()), ..DbConfig::default() }
}

/// The mixed workload of the acceptance criteria: bulk load, inserts,
/// every forced select algorithm, an adaptive select, a join, a group-by,
/// mutations, an indexed (ORAM + B+ tree) table, aggregate reads, WAL
/// inspection, and a checkpoint. Returns every decoded result set plus the
/// WAL transcript, all of which must be identical across substrates.
fn mixed_workload<M: EnclaveMemory>(db: &mut Database<M>, n: i64) -> (Vec<Vec<Row>>, Vec<String>) {
    let mut results: Vec<Vec<Row>> = Vec::new();
    let mut run = |db: &mut Database<M>, sql: &str| {
        let out = db.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        results.push(out.rows().to_vec());
    };

    run(db, &format!("CREATE TABLE t (k INT, v INT, name CHAR(8)) CAPACITY {n}"));
    for i in 0..n {
        run(db, &format!("INSERT INTO t VALUES ({i}, {}, 'r{}')", i * 3, i % 10));
    }

    // Every select algorithm over the same predicate shape.
    for algo in [
        SelectAlgo::Small,
        SelectAlgo::Large,
        SelectAlgo::Hash,
        SelectAlgo::Naive,
        SelectAlgo::Continuous,
    ] {
        db.config_mut().planner.force_select = Some(algo);
        run(db, &format!("SELECT * FROM t WHERE k >= 3 AND k < {}", n / 2));
    }
    db.config_mut().planner.force_select = None;
    run(db, "SELECT name, v FROM t WHERE v < 30");

    // Aggregates and group-by.
    run(db, "SELECT COUNT(*), SUM(v), MIN(k), MAX(k), AVG(v) FROM t WHERE k < 40");
    run(db, "SELECT name, SUM(v) FROM t GROUP BY name");

    // Join against a second table, with a pushed-down filter.
    run(db, "CREATE TABLE d (g INT, label CHAR(8)) CAPACITY 16");
    for g in 0..8 {
        run(db, &format!("INSERT INTO d VALUES ({g}, 'g{g}')"));
    }
    run(db, "SELECT * FROM d JOIN t ON d.g = t.k WHERE v < 18");

    // Mutations.
    run(db, &format!("UPDATE t SET v = -5 WHERE k >= {}", n - 8));
    run(db, &format!("DELETE FROM t WHERE k >= {}", n - 4));
    run(db, "SELECT * FROM t WHERE v = -5");

    // Indexed storage: Path ORAM + oblivious B+ tree on this substrate.
    run(db, "CREATE TABLE idx (k INT, v INT) STORAGE = INDEXED INDEX ON k CAPACITY 64");
    for i in 0..32 {
        run(db, &format!("INSERT INTO idx VALUES ({i}, {})", i * 7));
    }
    run(db, "SELECT * FROM idx WHERE k = 17");
    run(db, "SELECT * FROM idx WHERE k >= 5 AND k < 9");
    run(db, "DELETE FROM idx WHERE k = 2");
    run(db, "SELECT COUNT(*) FROM idx WHERE k >= 0");

    // Durability: checkpoint, then read the log back.
    db.checkpoint().expect("checkpoint");
    let wal = db.wal_records().expect("wal records");
    (results, wal)
}

const N: i64 = 48;

fn host_reference() -> (Vec<Vec<Row>>, Vec<String>) {
    let mut db = Database::new(wal_db_config());
    mixed_workload(&mut db, N)
}

/// Engine equivalence: the four substrate families return byte-identical
/// results and identical WAL transcripts.
#[test]
fn engine_equivalence_across_substrates() {
    let (host_results, host_wal) = host_reference();
    assert!(!host_wal.is_empty());

    let specs = [
        SubstrateSpec::Disk { dir: None },
        SubstrateSpec::CachedHost { capacity_blocks: 32 },
        SubstrateSpec::CachedDisk { dir: None, capacity_blocks: 32 },
        SubstrateSpec::ShardedHost { shards: 3 },
        SubstrateSpec::ShardedDisk { dir: None, shards: 2 },
    ];
    for spec in specs {
        let substrate = spec.build().unwrap();
        let label = substrate.label();
        let mut db = Database::with_memory(substrate, wal_db_config());
        let (results, wal) = mixed_workload(&mut db, N);
        assert_eq!(host_results, results, "{label}: query results must be byte-identical");
        assert_eq!(host_wal, wal, "{label}: WAL transcripts must match");
    }
}

/// WAL replay parity: a log produced on a disk-backed substrate redoes
/// into a fresh Host engine and reproduces the same state.
#[test]
fn wal_replay_from_disk_substrate() {
    let mut db =
        Database::with_memory(CachedMemory::new(DiskMemory::temp().unwrap(), 16), wal_db_config());
    db.execute("CREATE TABLE t (k INT, v INT) CAPACITY 32").unwrap();
    for i in 0..10 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * i)).unwrap();
    }
    db.execute("UPDATE t SET v = 0 WHERE k < 3").unwrap();
    db.execute("DELETE FROM t WHERE k = 9").unwrap();
    db.checkpoint().unwrap();
    let log = db.wal_records().unwrap();

    // The log includes the CREATE, so replay alone rebuilds the table.
    let mut recovered = Database::new(DbConfig::default());
    recovered.replay(&log).unwrap();
    let a = db.execute("SELECT * FROM t ORDER BY k").unwrap();
    let b = recovered.execute("SELECT * FROM t ORDER BY k").unwrap();
    assert_eq!(a.rows(), b.rows());
}

fn traced_workload<M: EnclaveMemory>(db: &mut Database<M>) -> Trace {
    db.start_trace();
    // A slice of the mixed workload that exercises per-block and batched
    // paths, ORAM routing, and WAL appends under tracing.
    db.execute("CREATE TABLE t (k INT, v INT) CAPACITY 32").unwrap();
    for i in 0..20 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 2)).unwrap();
    }
    db.execute("SELECT * FROM t WHERE k >= 4 AND k < 12").unwrap();
    db.execute("SELECT COUNT(*), SUM(v) FROM t WHERE k < 10").unwrap();
    db.execute("UPDATE t SET v = 1 WHERE k = 3").unwrap();
    db.execute("CREATE TABLE idx (k INT, v INT) STORAGE = INDEXED INDEX ON k CAPACITY 32").unwrap();
    for i in 0..16 {
        db.execute(&format!("INSERT INTO idx VALUES ({i}, {i})")).unwrap();
    }
    db.execute("SELECT * FROM idx WHERE k = 11").unwrap();
    db.take_trace()
}

/// The cache must not change the adversary's view: the logical trace over
/// `CachedMemory<Host>` — even a tiny, constantly-evicting one — is
/// event-identical to the trace over a bare `Host`.
#[test]
fn cached_memory_trace_equals_host_trace() {
    let mut host_db = Database::new(wal_db_config());
    let host_trace = traced_workload(&mut host_db);
    assert!(!host_trace.is_empty());

    for capacity in [4, 64, 4096] {
        let mut cached_db =
            Database::with_memory(CachedMemory::new(Host::new(), capacity), wal_db_config());
        let cached_trace = traced_workload(&mut cached_db);
        assert_eq!(
            host_trace, cached_trace,
            "cache capacity {capacity}: logical trace must be identical to Host"
        );
    }
}

/// Sharding must not change the adversary's view either (global region
/// ids are allocated in the same order as a single Host).
#[test]
fn sharded_memory_trace_equals_host_trace() {
    let mut host_db = Database::new(wal_db_config());
    let host_trace = traced_workload(&mut host_db);
    let mut sharded_db =
        Database::with_memory(ShardedMemory::from_fn(3, |_| Host::new()), wal_db_config());
    let sharded_trace = traced_workload(&mut sharded_db);
    assert_eq!(host_trace, sharded_trace);
}

/// The acceptance scenario: a dataset whose sealed blocks outnumber the
/// cache capacity runs the full engine-equivalence workload over
/// `CachedMemory<DiskMemory>` — larger-than-cache, disk-backed — with
/// byte-identical results, an identical WAL transcript, and an identical
/// per-block access trace; the cache provably thrashed (evictions,
/// backing traffic) while absorbing repeat accesses (hits).
#[test]
fn larger_than_cache_disk_run_matches_host() {
    let (host_results, host_wal) = host_reference();
    let mut host_db = Database::new(wal_db_config());
    let host_trace = traced_workload(&mut host_db);

    // N=48 rows (one sealed block each) + WAL + ORAM buckets ≫ 24 blocks.
    const CACHE_BLOCKS: usize = 24;
    let mut db = Database::with_memory(
        CachedMemory::new(DiskMemory::temp().unwrap(), CACHE_BLOCKS),
        wal_db_config(),
    );
    let (results, wal) = mixed_workload(&mut db, N);
    assert_eq!(host_results, results, "byte-identical results on cached disk");
    assert_eq!(host_wal, wal);

    let cache = db.host_mut();
    let cs = cache.cache_stats();
    assert!(cs.evictions > 0, "dataset must exceed the cache: {cs:?}");
    assert!(cs.hits > 0, "repeat accesses must hit: {cs:?}");
    assert!(cache.cached_blocks() <= CACHE_BLOCKS);
    assert!(
        cache.inner().stats().total_accesses() < cache.stats().total_accesses(),
        "the cache must absorb some backing traffic"
    );

    // Trace equality on the traced slice of the workload.
    let mut traced_db = Database::with_memory(
        CachedMemory::new(DiskMemory::temp().unwrap(), CACHE_BLOCKS),
        wal_db_config(),
    );
    let disk_trace = traced_workload(&mut traced_db);
    assert_eq!(host_trace, disk_trace, "per-block access traces must be identical");
}

/// `DiskMemory::temp` substrates leave nothing behind — the guard removes
/// the region files and the directory even after real engine traffic.
#[test]
fn disk_substrate_cleans_up_after_itself() {
    let dir = {
        let disk = DiskMemory::temp().unwrap();
        let dir = disk.dir().to_path_buf();
        let mut db = Database::with_memory(disk, DbConfig::default());
        db.execute("CREATE TABLE t (k INT) CAPACITY 16").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        assert!(dir.is_dir());
        assert!(std::fs::read_dir(&dir).unwrap().count() > 0, "region files exist while open");
        dir
    };
    assert!(!dir.exists(), "temp disk substrate must remove its directory on drop");
}

/// Explicitly-rooted disk substrates persist their region files (that is
/// the point of a durable substrate); the test keeps them inside its own
/// guard so the suite still cleans up.
#[test]
fn explicit_disk_dir_survives_engine_drop() {
    let guard = TempDir::new("oblidb-conformance").unwrap();
    let store = guard.path().join("db");
    {
        let disk = DiskMemory::create(&store).unwrap();
        let mut db = Database::with_memory(disk, wal_db_config());
        db.execute("CREATE TABLE t (k INT) CAPACITY 8").unwrap();
        db.execute("INSERT INTO t VALUES (42)").unwrap();
        db.checkpoint().unwrap();
    }
    assert!(
        std::fs::read_dir(&store).unwrap().count() > 0,
        "explicit-dir region files persist after the engine is dropped"
    );
}

/// Payload-free guards still work through `AnySubstrate` dispatch, and
/// stats surface uniformly across the substrate families.
#[test]
fn any_substrate_stats_surface_uniformly() {
    let specs = [
        SubstrateSpec::Host,
        SubstrateSpec::Disk { dir: None },
        SubstrateSpec::CachedDisk { dir: None, capacity_blocks: 64 },
        SubstrateSpec::ShardedHost { shards: 2 },
    ];
    let mut reports = Vec::new();
    for spec in specs {
        let mut db = Database::with_memory(spec.build().unwrap(), DbConfig::default());
        db.execute("CREATE TABLE t (k INT) CAPACITY 16").unwrap();
        for i in 0..8 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        db.host_mut().reset_stats();
        db.execute("SELECT * FROM t WHERE k < 4").unwrap();
        let m: &mut AnySubstrate = db.host_mut();
        reports.push(m.stats().report(m.label()));
    }
    // Same workload, same logical counters — whatever the substrate.
    for r in &reports[1..] {
        assert_eq!(r.stats, reports[0].stats, "{} vs {}", r.name, reports[0].name);
    }
}
