//! Telemetry conformance: observability must be *observably free*.
//!
//! * Telemetry-on changes nothing the adversary (or the user) can see —
//!   results and untrusted-memory traces are bit-identical to a
//!   telemetry-off run, because spans and metrics live entirely in enclave
//!   memory.
//! * Telemetry-off is free — no spans are recorded, no counters move.
//! * `EXPLAIN ANALYZE` renders measured wall time, crossings, and AEAD
//!   bytes for every select operator and every join.
//! * The trace auditor flags a data-dependent access pattern (the
//!   Continuous select leaking match *position*) and stays silent on
//!   oblivious plans.
//!
//! The telemetry flag and metrics registry are process-global, so every
//! test here serializes on one gate.

use std::sync::{Mutex, MutexGuard};

use oblidb::core::{Database, DbConfig, JoinAlgo, SelectAlgo};
use oblidb::enclave::Trace;
use oblidb::telemetry;

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn seeded_db(config: DbConfig) -> Database {
    let mut db = Database::new(config);
    db.execute("CREATE TABLE t (k INT, v INT) CAPACITY 128").unwrap();
    for i in 0..64 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 3)).unwrap();
    }
    db
}

fn run_traced(db: &mut Database, sql: &str) -> (Vec<Vec<oblidb::core::Value>>, Trace) {
    db.start_trace();
    let out = db.execute(sql).unwrap();
    (out.rows().to_vec(), db.take_trace())
}

const QUERY: &str = "SELECT * FROM t WHERE k >= 10 AND k < 26";

/// Telemetry-on is invisible from outside the enclave: same rows, same
/// access trace, bit for bit. Telemetry-off records nothing.
#[test]
fn telemetry_on_is_trace_and_result_identical() {
    let _g = gate();

    telemetry::set_enabled(false);
    let _ = telemetry::take_spans();
    telemetry::reset_metrics();
    let mut db_off = seeded_db(DbConfig::default());
    let (rows_off, trace_off) = run_traced(&mut db_off, QUERY);
    assert!(telemetry::take_spans().is_empty(), "disabled telemetry recorded spans");
    let idle = telemetry::snapshot();
    assert!(
        idle.counters.iter().all(|(_, v)| *v == 0),
        "disabled telemetry moved counters: {idle:?}"
    );

    telemetry::set_enabled(true);
    let mut db_on = seeded_db(DbConfig::default());
    let (rows_on, trace_on) = run_traced(&mut db_on, QUERY);
    let spans = telemetry::take_spans();
    telemetry::set_enabled(false);

    assert_eq!(rows_off, rows_on, "telemetry changed query results");
    assert_eq!(trace_off, trace_on, "telemetry changed the adversary-visible trace");

    // The run produced real spans with sane nesting: statement lifecycle
    // plus at least one operator.
    assert!(spans.iter().any(|s| s.kind == telemetry::SpanKind::Prepare));
    assert!(spans.iter().any(|s| s.kind == telemetry::SpanKind::Run));
    assert!(spans.iter().any(|s| s.kind.name().starts_with("select.")));

    // And the registry saw the traffic the engine generated.
    let snap = telemetry::snapshot();
    let counter =
        |name: &str| snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0);
    assert!(counter("statements_run") >= 65, "CREATE + 64 INSERTs + SELECT");
    assert!(counter("blocks_sealed") > 0);
    assert!(counter("blocks_opened") > 0);
    assert!(counter("bytes_sealed") > 0);
    let hist = snap.histograms.iter().find(|h| h.name == "statement_nanos").unwrap();
    assert!(hist.count >= 65);
    telemetry::reset_metrics();
}

/// `EXPLAIN ANALYZE` executes the query and renders measured actuals —
/// wall time, crossings, and AEAD bytes — for all six select operators.
#[test]
fn explain_analyze_renders_actuals_for_every_select_algo() {
    let _g = gate();
    telemetry::set_enabled(false);
    for algo in [
        SelectAlgo::Small,
        SelectAlgo::Large,
        SelectAlgo::Continuous,
        SelectAlgo::Hash,
        SelectAlgo::Naive,
        SelectAlgo::Padded,
    ] {
        let mut config = DbConfig::default();
        config.planner.force_select = Some(algo);
        let mut db = seeded_db(config);
        let out = db.execute(&format!("EXPLAIN ANALYZE {QUERY}")).unwrap();
        let text: Vec<String> =
            out.rows().iter().map(|r| r[0].as_text().unwrap().to_string()).collect();
        let text = text.join("\n");
        assert!(text.contains("act:"), "{algo:?}: no measured actuals in:\n{text}");
        assert!(text.contains("crossings="), "{algo:?}: no crossings in:\n{text}");
        assert!(text.contains("bytes="), "{algo:?}: no AEAD bytes in:\n{text}");
        assert!(text.contains("time="), "{algo:?}: no wall time in:\n{text}");
        // The leakage the run would have produced is still reported.
        assert_eq!(out.plan.select_algo, Some(algo));
        assert_eq!(out.plan.output_rows, 16);
    }
}

/// Same for all three join algorithms.
#[test]
fn explain_analyze_renders_actuals_for_every_join_algo() {
    let _g = gate();
    telemetry::set_enabled(false);
    for algo in [JoinAlgo::Hash, JoinAlgo::Opaque, JoinAlgo::ZeroOm] {
        let mut config = DbConfig::default();
        config.planner.force_join = Some(algo);
        let mut db = seeded_db(config);
        db.execute("CREATE TABLE d (g INT, label CHAR(8)) CAPACITY 16").unwrap();
        for g in 0..8 {
            db.execute(&format!("INSERT INTO d VALUES ({g}, 'g{g}')")).unwrap();
        }
        let out =
            db.execute("EXPLAIN ANALYZE SELECT * FROM d JOIN t ON d.g = t.k WHERE v < 18").unwrap();
        let text: Vec<String> =
            out.rows().iter().map(|r| r[0].as_text().unwrap().to_string()).collect();
        let text = text.join("\n");
        assert!(text.contains("Join"), "{algo:?}: no join node in:\n{text}");
        assert!(text.contains("act:"), "{algo:?}: no measured actuals in:\n{text}");
        assert!(text.contains("time="), "{algo:?}: no wall time in:\n{text}");
        assert!(text.contains("bytes="), "{algo:?}: no AEAD bytes in:\n{text}");
        assert_eq!(out.plan.join_algo, Some(algo));
    }
}

/// A cached EXPLAIN ANALYZE plan re-runs and re-renders.
#[test]
fn explain_analyze_is_cacheable_and_rerunnable() {
    let _g = gate();
    telemetry::set_enabled(false);
    let mut db = seeded_db(DbConfig::default());
    let sql = format!("EXPLAIN ANALYZE {QUERY}");
    let first = db.execute(&sql).unwrap();
    let misses = db.plan_cache_stats().misses;
    let second = db.execute(&sql).unwrap();
    assert_eq!(db.plan_cache_stats().misses, misses, "second run should hit the plan cache");
    assert!(db.plan_cache_stats().hits >= 1);
    assert_eq!(first.plan.output_rows, second.plan.output_rows);
    assert!(second.rows().iter().any(|r| r[0].as_text().unwrap().contains("time=")));
}

/// Injected data-dependent access pattern, caught. The adaptive planner's
/// operator choice reacts to match *contiguity* — payload data, not a
/// public size. Two runs of the same statement shape (same normalized
/// SQL, table sizes, output size) over contiguous vs scattered matches
/// pick different operators and therefore touch untrusted memory
/// differently: exactly the §2.3 plan leakage, and the auditor flags it.
#[test]
fn auditor_flags_data_dependent_plan_choice() {
    let _g = gate();
    telemetry::set_enabled(false);
    let mut config = DbConfig { audit: true, ..DbConfig::default() };
    // The closed-form planner takes Continuous whenever the matches are
    // contiguous — the sharpest data-dependent choice to flip.
    config.planner.cost_model = oblidb::core::CostModel::ClosedForm;
    let mut db = Database::new(config);
    // v marks 16 *contiguous* rows (k in 10..26); w marks 16 *scattered*
    // rows (every fourth k). Same table size, same match count.
    db.execute("CREATE TABLE t (k INT, v INT, w INT) CAPACITY 128").unwrap();
    for i in 0..64 {
        let v = i64::from((10..26).contains(&i));
        let w = i64::from(i % 4 == 0);
        db.execute(&format!("INSERT INTO t VALUES ({i}, {v}, {w})")).unwrap();
    }

    let run1 = db.execute("SELECT k FROM t WHERE v = 1").unwrap();
    assert_eq!(run1.plan.select_algo, Some(SelectAlgo::Continuous));
    assert!(db.audit_violations().is_empty(), "reference run cannot diverge from itself");

    // Move the matches from the contiguous set to the scattered one —
    // same count, different layout.
    db.execute("UPDATE t SET v = 0 WHERE k >= 0").unwrap();
    db.execute("UPDATE t SET v = 1 WHERE w = 1").unwrap();

    let run2 = db.execute("SELECT k FROM t WHERE v = 1").unwrap();
    assert_eq!(run1.plan.output_rows, run2.plan.output_rows, "shapes must match");
    assert_ne!(run1.plan.select_algo, run2.plan.select_algo, "plan choice should flip");

    let report = db.audit_report();
    assert_eq!(db.audit_violations().len(), 1, "auditor missed the plan leak: {report:?}");
    let v = &db.audit_violations()[0];
    assert!(v.shape.contains("where v = ?"), "unexpected shape: {}", v.shape);
    assert_ne!(v.expected_hash, v.observed_hash);
}

/// Oblivious plans (Continuous disabled, as the obliviousness suite pins
/// them) never trip the auditor, whatever the parameters.
#[test]
fn auditor_accepts_oblivious_plans() {
    let _g = gate();
    telemetry::set_enabled(false);
    let mut config = DbConfig { audit: true, ..DbConfig::default() };
    config.planner.enable_continuous = false;
    let mut db = seeded_db(config);

    db.execute("SELECT * FROM t WHERE k >= 10 AND k < 26").unwrap();
    db.execute("SELECT * FROM t WHERE k >= 40 AND k < 56").unwrap();
    db.execute("SELECT COUNT(*) FROM t WHERE v < 60").unwrap();
    db.execute("SELECT COUNT(*) FROM t WHERE v < 60").unwrap();

    let report = db.audit_report();
    assert!(db.audit_violations().is_empty(), "false positive: {report:?}");
    assert!(report.checks >= 4 + 65, "every statement should be audited: {report:?}");
    assert_eq!(report.skips, 0);
}

/// A caller holding the trace channel suspends auditing — counted as
/// skips, never stolen traces or silent gaps.
#[test]
fn auditor_skips_when_caller_is_tracing() {
    let _g = gate();
    telemetry::set_enabled(false);
    let config = DbConfig { audit: true, ..DbConfig::default() };
    let mut db = seeded_db(config);
    let checks_before = db.audit_report().checks;

    db.start_trace();
    db.execute(QUERY).unwrap();
    let trace = db.take_trace();
    assert!(!trace.is_empty(), "the caller's trace must be intact");
    let report = db.audit_report();
    assert_eq!(report.checks, checks_before, "audited a statement it should have skipped");
    assert_eq!(report.skips, 1);
}
