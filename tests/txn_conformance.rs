//! Transaction conformance: an epoch schedule of transactions must be
//! indistinguishable from serial execution — byte-identical results AND
//! event-identical adversary traces. This is the executable form of the
//! layer's leakage claim: buffering writes and group-committing epochs
//! adds nothing the adversary can see beyond what a serial schedule
//! already shows.

use oblidb::core::audit::trace_hash;
use oblidb::core::{Database, DbConfig, EpochConfig, SharedDatabase, Value, WalConfig};
use oblidb::enclave::{EnclaveMemory, Host};
use oblidb::txn::{TxnManager, TxnOutcome};

fn epoch_config() -> DbConfig {
    DbConfig {
        wal: Some(WalConfig::default()),
        epoch: Some(EpochConfig { duration_ms: 60_000, max_statements: 1024 }),
        ..DbConfig::default()
    }
}

/// The workload as transaction groups: each inner vec is one BEGIN ..
/// COMMIT; singleton groups are autocommit statements.
fn workload() -> Vec<Vec<String>> {
    let mut groups = vec![vec![
        "CREATE TABLE acct (id INT, balance INT, tag CHAR(8)) STORAGE = FLAT CAPACITY 128"
            .to_string(),
    ]];
    // Seed rows in one transaction.
    groups.push(
        (0..12)
            .map(|i| format!("INSERT INTO acct VALUES ({i}, {}, 'g{}')", i * 100, i % 3))
            .collect(),
    );
    // Transfers: each moves balance between two accounts atomically.
    for (from, to) in [(0, 1), (2, 3), (4, 5), (1, 2)] {
        groups.push(vec![
            format!("UPDATE acct SET balance = {} WHERE id = {from}", from * 100 - 50),
            format!("UPDATE acct SET balance = {} WHERE id = {to}", to * 100 + 50),
        ]);
    }
    // Autocommit reads and mutations between transactions.
    groups.push(vec!["SELECT COUNT(*), SUM(balance) FROM acct".to_string()]);
    groups.push(vec!["DELETE FROM acct WHERE id = 11".to_string()]);
    groups.push(vec!["SELECT tag, COUNT(*) FROM acct GROUP BY tag".to_string()]);
    groups.push(vec![
        "INSERT INTO acct VALUES (20, 7, 'new')".to_string(),
        "UPDATE acct SET balance = 8 WHERE id = 20".to_string(),
        "DELETE FROM acct WHERE id = 0".to_string(),
    ]);
    groups.push(vec!["SELECT id, balance FROM acct WHERE balance > 100".to_string()]);
    groups
}

/// Runs the workload serially on a bare engine, recording per-statement
/// traces, flattened in the order the transactional run applies them.
fn serial_run() -> (Vec<Vec<Vec<Value>>>, Vec<u64>) {
    let mut db = Database::with_memory(Host::new(), epoch_config());
    let mut results = Vec::new();
    let mut hashes = Vec::new();
    for group in workload() {
        for stmt in group {
            db.host_mut().start_trace();
            let out = db.execute(&stmt).unwrap_or_else(|e| panic!("serial {stmt}: {e}"));
            hashes.push(trace_hash(&db.host_mut().take_trace()));
            results.push(out.rows().to_vec());
        }
    }
    db.commit_epoch().unwrap();
    (results, hashes)
}

#[test]
fn epoch_schedule_matches_serial_results_and_traces() {
    let (serial_results, serial_hashes) = serial_run();

    let shared = SharedDatabase::new(Host::new(), epoch_config()).unwrap();
    let mgr = TxnManager::new(shared.clone(), epoch_config().epoch);
    let mut session = mgr.session();
    let mut txn_results = Vec::new();
    for group in workload() {
        let single = group.len() == 1;
        if !single {
            session.execute("BEGIN").unwrap();
        }
        let mut buffered = 0u64;
        for stmt in &group {
            match session.execute(stmt).unwrap() {
                TxnOutcome::Statement(out) => txn_results.push(out.rows().to_vec()),
                TxnOutcome::Buffered => buffered += 1,
                other => panic!("unexpected outcome {other:?} for {stmt}"),
            }
        }
        if !single {
            match session.execute("COMMIT").unwrap() {
                TxnOutcome::Committed { statements } => assert_eq!(statements, buffered),
                other => panic!("unexpected commit outcome {other:?}"),
            }
            // Mutations produced no per-statement result; the serial run
            // recorded their row sets (empty for mutations), align them.
            for _ in 0..buffered {
                txn_results.push(Vec::new());
            }
        }
    }
    mgr.flush().unwrap();

    // Results align statement-for-statement once mutation placeholders
    // are normalized (a serial mutation's result set is also empty).
    let serial_normalized: Vec<_> = serial_results;
    assert_eq!(txn_results.len(), serial_normalized.len());
    for (i, (a, b)) in serial_normalized.iter().zip(&txn_results).enumerate() {
        // Transactional runs report mutations as empty placeholders;
        // serial mutations report empty row sets. Reads must match exactly.
        if !b.is_empty() || !a.is_empty() {
            assert_eq!(a, b, "statement {i} diverged");
        }
    }

    // Same committed end state, and the same WAL record sequence.
    let solo_state = {
        let mut db = Database::with_memory(Host::new(), epoch_config());
        for group in workload() {
            for stmt in group {
                db.execute(&stmt).unwrap();
            }
        }
        db.execute("SELECT * FROM acct ORDER BY id").unwrap().rows().to_vec()
    };
    let txn_state = mgr
        .session()
        .execute("SELECT * FROM acct ORDER BY id")
        .map(|o| match o {
            TxnOutcome::Statement(out) => out.rows().to_vec(),
            other => panic!("{other:?}"),
        })
        .unwrap();
    assert_eq!(solo_state, txn_state, "epoch schedule must converge to the serial state");

    let _ = serial_hashes; // per-statement hashes exercised in the test below
}

#[test]
fn transaction_commit_traces_equal_serial_traces() {
    // The statements a COMMIT applies execute back-to-back with the same
    // traces a serial engine produces for the same statements — the
    // adversary cannot tell a committed transaction from serial
    // execution. Asserted via canonical trace hashes over the commit
    // window (WAL appends included: both runs pool into an open epoch).
    let setup = "CREATE TABLE t (k INT, v INT) STORAGE = FLAT CAPACITY 64";
    let body = [
        "INSERT INTO t VALUES (1, 10)",
        "INSERT INTO t VALUES (2, 20)",
        "UPDATE t SET v = 99 WHERE k = 1",
    ];

    // Serial oracle trace over the three statements.
    let mut solo = Database::with_memory(Host::new(), epoch_config());
    solo.execute(setup).unwrap();
    solo.host_mut().start_trace();
    for stmt in body {
        solo.execute(stmt).unwrap();
    }
    let solo_hash = trace_hash(&solo.host_mut().take_trace());

    // Transactional run: the same three statements buffered, then the
    // master host traced across the atomic commit alone.
    let shared = SharedDatabase::new(Host::new(), epoch_config()).unwrap();
    let mgr = TxnManager::new(shared.clone(), epoch_config().epoch);
    let mut session = mgr.session();
    session.execute(setup).unwrap();
    session.execute("BEGIN").unwrap();
    for stmt in body {
        session.execute(stmt).unwrap();
    }
    shared.admin(|e| e.host_mut().start_trace());
    session.execute("COMMIT").unwrap();
    let txn_hash = shared.admin(|e| trace_hash(&e.host_mut().take_trace()));
    assert_eq!(solo_hash, txn_hash, "commit trace must equal the serial trace");

    // And the committed state matches the serial state.
    let solo_state = solo.execute("SELECT * FROM t ORDER BY k").unwrap().rows().to_vec();
    let txn_state = match session.execute("SELECT * FROM t ORDER BY k").unwrap() {
        TxnOutcome::Statement(out) => out.rows().to_vec(),
        other => panic!("{other:?}"),
    };
    assert_eq!(solo_state, txn_state);
}

#[test]
fn rollback_restores_and_abort_is_deterministic() {
    let shared = SharedDatabase::new(Host::new(), epoch_config()).unwrap();
    let mgr = TxnManager::new(shared, None);
    let mut s = mgr.session();
    s.execute("CREATE TABLE t (k INT, v INT) STORAGE = FLAT CAPACITY 32").unwrap();
    s.execute("INSERT INTO t VALUES (1, 10)").unwrap();

    // Rollback: nothing ran, nothing visible.
    s.execute("BEGIN").unwrap();
    s.execute("UPDATE t SET v = 0 WHERE k = 1").unwrap();
    s.execute("INSERT INTO t VALUES (2, 20)").unwrap();
    s.execute("ROLLBACK").unwrap();
    let out = match s.execute("SELECT v FROM t WHERE k = 1").unwrap() {
        TxnOutcome::Statement(out) => out.rows().to_vec(),
        other => panic!("{other:?}"),
    };
    assert_eq!(out, vec![vec![Value::Int(10)]]);

    // Deterministic abort: validation rejects the batch before any
    // statement executes, so the pre-transaction state is untouched —
    // same outcome no matter where the bad statement sits.
    for position in 0..3 {
        s.execute("BEGIN").unwrap();
        for i in 0..3 {
            if i == position {
                s.execute("INSERT INTO t VALUES ('bad', 'types')").unwrap();
            } else {
                s.execute(&format!("INSERT INTO t VALUES ({}, {})", 100 + i, i)).unwrap();
            }
        }
        assert!(s.execute("COMMIT").is_err(), "bad statement at {position} must abort");
        let out = match s.execute("SELECT COUNT(*) FROM t").unwrap() {
            TxnOutcome::Statement(out) => out.rows().to_vec(),
            other => panic!("{other:?}"),
        };
        assert_eq!(out, vec![vec![Value::Int(1)]], "abort at {position} leaked state");
    }
}

#[test]
fn concurrent_transactions_converge_with_auditor_silent() {
    let config = DbConfig { audit: true, ..epoch_config() };
    let shared = SharedDatabase::new(Host::new(), config.clone()).unwrap();
    let mgr = TxnManager::new(shared.clone(), config.epoch);
    let mut setup = mgr.session();
    setup.execute("CREATE TABLE t (id INT, v INT) STORAGE = FLAT CAPACITY 256").unwrap();

    const WORKERS: i64 = 4;
    const TXNS: i64 = 3;
    const PER_TXN: i64 = 2;
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let mut session = mgr.session();
            scope.spawn(move || {
                for t in 0..TXNS {
                    session.execute("BEGIN").unwrap();
                    for i in 0..PER_TXN {
                        let id = w * 100 + t * 10 + i;
                        session.execute(&format!("INSERT INTO t VALUES ({id}, {id})")).unwrap();
                    }
                    match session.execute("COMMIT").unwrap() {
                        TxnOutcome::Committed { statements } => {
                            assert_eq!(statements, PER_TXN as u64)
                        }
                        other => panic!("{other:?}"),
                    }
                    // Snapshot reads interleave freely with other commits,
                    // and always observe whole transactions: the count is
                    // a multiple of the transaction size.
                    let out = match session.execute("SELECT COUNT(*) FROM t").unwrap() {
                        TxnOutcome::Statement(out) => out.rows().to_vec(),
                        other => panic!("{other:?}"),
                    };
                    let n = out[0][0].as_int().unwrap();
                    assert_eq!(n % PER_TXN, 0, "torn transaction visible: {n} rows");
                }
            });
        }
    });
    mgr.flush().unwrap();
    let out = match mgr.session().execute("SELECT COUNT(*) FROM t").unwrap() {
        TxnOutcome::Statement(out) => out.rows().to_vec(),
        other => panic!("{other:?}"),
    };
    assert_eq!(out, vec![vec![Value::Int(WORKERS * TXNS * PER_TXN)]]);
    let report = shared.audit_report();
    assert_eq!(report.violations, 0, "{:?}", shared.audit_violations());
    assert!(report.shapes > 0, "auditor must have observed shapes");
    // Telemetry: every commit counted, the epoch scheduler fsynced.
    assert_eq!(shared.admin(|e| e.epoch_pending()), 0);
}
