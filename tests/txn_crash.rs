//! Crash-mid-epoch injection: kill the engine after statements' WAL
//! records were appended into an open epoch but before the group fsync
//! sealed it, on every disk-backed substrate. Recovery must land exactly
//! on the previous epoch boundary — whole epochs or none, never a torn
//! suffix — and the recovered engine must behave identically to one that
//! never crashed (trace auditor silent).

use oblidb::core::{Database, DbConfig, EpochConfig, Row, SharedDatabase, Value, WalConfig};
use oblidb::substrates::{SubstrateSpec, TempDir};

/// A huge window and cap: the epoch only closes when the test says so.
fn epoch_config() -> DbConfig {
    DbConfig {
        wal: Some(WalConfig::default()),
        epoch: Some(EpochConfig { duration_ms: 3_600_000, max_statements: 1 << 20 }),
        ..DbConfig::default()
    }
}

fn all_rows(db: &mut Database<impl oblidb::enclave::EnclaveMemory>) -> Vec<Row> {
    db.execute("SELECT * FROM t ORDER BY k").unwrap().rows().to_vec()
}

fn epoch1() -> Vec<String> {
    let mut stmts = vec!["CREATE TABLE t (k INT, v INT) CAPACITY 32".to_string()];
    for i in 0..5 {
        stmts.push(format!("INSERT INTO t VALUES ({i}, {})", i * 10));
    }
    stmts
}

fn epoch2() -> Vec<String> {
    vec![
        "INSERT INTO t VALUES (100, 1)".to_string(),
        "UPDATE t SET v = -1 WHERE k = 2".to_string(),
        "DELETE FROM t WHERE k = 0".to_string(),
    ]
}

/// Crash after epoch 2's WAL appends but before its group fsync:
/// recovery must surface exactly epoch 1's state.
fn crash_mid_epoch_lands_on_boundary(spec: &SubstrateSpec) {
    let label = spec.profile_name();
    let dir = spec.persist_dir().unwrap().to_path_buf();
    {
        let mut db = oblidb::database_on(spec, epoch_config()).unwrap();
        for stmt in epoch1() {
            db.execute(&stmt).unwrap();
        }
        // Group commit: one epoch marker, one fsync for all six records.
        assert_eq!(db.commit_epoch().unwrap(), epoch1().len() as u64);
        db.persist_to(&dir).unwrap();

        // Epoch 2 pools records into the next open epoch...
        for stmt in epoch2() {
            db.execute(&stmt).unwrap();
        }
        assert_eq!(db.epoch_pending(), epoch2().len() as u64);
        // ...and the crash lands here: records appended, no group fsync,
        // no epoch marker. Dropping without commit_epoch models it.
    }

    let expected_epoch1 = {
        let mut oracle = Database::new(DbConfig::default());
        for stmt in epoch1() {
            oracle.execute(&stmt).unwrap();
        }
        all_rows(&mut oracle)
    };
    let mut recovered = oblidb::database_open(spec, epoch_config()).unwrap();
    assert_eq!(
        all_rows(&mut recovered),
        expected_epoch1,
        "{label}: recovery must land on the epoch-1 boundary, dropping the open epoch whole"
    );
    assert_eq!(recovered.epoch_pending(), 0, "{label}: recovered log must not reopen an epoch");

    // The recovered engine serves like one that never crashed: shared
    // sessions run with the trace auditor silent.
    drop(recovered);
    let reopened = oblidb::database_open(spec, DbConfig { audit: true, ..epoch_config() }).unwrap();
    let shared = SharedDatabase::adopt(reopened);
    let mut session = shared.session();
    session.execute("INSERT INTO t VALUES (200, 2)").unwrap();
    for _ in 0..3 {
        session.execute("SELECT COUNT(*) FROM t").unwrap();
        session.execute("SELECT v FROM t WHERE k = 3").unwrap();
    }
    let report = shared.audit_report();
    assert_eq!(report.violations, 0, "{label}: {:?}", shared.audit_violations());
    shared.admin(|e| e.commit_epoch()).unwrap();
}

/// The same schedule with the group fsync landing before the crash:
/// recovery must include epoch 2 — the boundary moved.
fn crash_after_group_fsync_keeps_the_epoch(spec: &SubstrateSpec) {
    let label = spec.profile_name();
    let dir = spec.persist_dir().unwrap().to_path_buf();
    {
        let mut db = oblidb::database_on(spec, epoch_config()).unwrap();
        for stmt in epoch1() {
            db.execute(&stmt).unwrap();
        }
        db.commit_epoch().unwrap();
        db.persist_to(&dir).unwrap();
        for stmt in epoch2() {
            db.execute(&stmt).unwrap();
        }
        // The epoch seals — marker + one fsync — and THEN the crash hits.
        assert_eq!(db.commit_epoch().unwrap(), epoch2().len() as u64);
    }
    let expected = {
        let mut oracle = Database::new(DbConfig::default());
        for stmt in epoch1().into_iter().chain(epoch2()) {
            oracle.execute(&stmt).unwrap();
        }
        all_rows(&mut oracle)
    };
    let mut recovered = oblidb::database_open(spec, epoch_config()).unwrap();
    assert_eq!(
        all_rows(&mut recovered),
        expected,
        "{label}: a sealed epoch must survive the crash in full"
    );
}

#[test]
fn mid_epoch_crash_on_disk() {
    let guard = TempDir::new("oblidb-txncrash-disk").unwrap();
    let spec = SubstrateSpec::Disk { dir: Some(guard.path().join("db")) };
    crash_mid_epoch_lands_on_boundary(&spec);
}

#[test]
fn mid_epoch_crash_on_cached_disk() {
    let guard = TempDir::new("oblidb-txncrash-cached").unwrap();
    let spec = SubstrateSpec::CachedDisk { dir: Some(guard.path().join("db")), capacity_blocks: 8 };
    crash_mid_epoch_lands_on_boundary(&spec);
}

#[test]
fn mid_epoch_crash_on_sharded_disk() {
    let guard = TempDir::new("oblidb-txncrash-sharded").unwrap();
    let spec = SubstrateSpec::ShardedDisk { dir: Some(guard.path().join("db")), shards: 2 };
    crash_mid_epoch_lands_on_boundary(&spec);
}

#[test]
fn sealed_epoch_survives_on_disk() {
    let guard = TempDir::new("oblidb-txncrash-sealed").unwrap();
    let spec = SubstrateSpec::Disk { dir: Some(guard.path().join("db")) };
    crash_after_group_fsync_keeps_the_epoch(&spec);
}

#[test]
fn sealed_epoch_survives_on_cached_disk() {
    let guard = TempDir::new("oblidb-txncrash-sealed-cached").unwrap();
    let spec = SubstrateSpec::CachedDisk { dir: Some(guard.path().join("db")), capacity_blocks: 8 };
    crash_after_group_fsync_keeps_the_epoch(&spec);
}

#[test]
fn committed_transaction_survives_crash_as_a_unit() {
    // A transaction committed into a sealed epoch recovers whole; one
    // buffered (never committed) at crash time leaves no trace at all.
    let guard = TempDir::new("oblidb-txncrash-txn").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    {
        let db = oblidb::database_on(&spec, epoch_config()).unwrap();
        let shared = SharedDatabase::adopt(db);
        let mgr = oblidb::txn::TxnManager::new(shared.clone(), epoch_config().epoch);
        let mut s = mgr.session();
        s.execute("CREATE TABLE t (k INT, v INT) CAPACITY 32").unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        s.execute("INSERT INTO t VALUES (2, 20)").unwrap();
        s.execute("COMMIT").unwrap();
        mgr.flush().unwrap(); // epoch sealed: the transaction is durable
        shared.admin(|e| e.persist_to(&dir)).unwrap();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (3, 30)").unwrap();
        // Crash with the second transaction still buffered: it never
        // executed, so not even an open epoch records it.
    }
    let mut recovered = oblidb::database_open(&spec, epoch_config()).unwrap();
    assert_eq!(
        all_rows(&mut recovered),
        vec![vec![Value::Int(1), Value::Int(10)], vec![Value::Int(2), Value::Int(20)],],
        "the committed transaction survives whole; the buffered one vanishes"
    );
}
