//! WAL truncation at checkpoint: with `truncate_at_checkpoint` on, each
//! `persist_to` retires the old log region and seeds a fresh one with a
//! compacted state dump, so the log stays proportional to live state
//! instead of statement history — while the manifest's checkpoint LSN
//! keeps counting every statement ever logged.

use oblidb::core::{Database, DbConfig, Row, Value, WalConfig};
use oblidb::substrates::{SubstrateSpec, TempDir};

fn truncating_config() -> DbConfig {
    DbConfig {
        wal: Some(WalConfig { truncate_at_checkpoint: true, ..WalConfig::default() }),
        ..DbConfig::default()
    }
}

fn all_rows(db: &mut Database<impl oblidb::enclave::EnclaveMemory>) -> Vec<Row> {
    db.execute("SELECT * FROM t ORDER BY k").unwrap().rows().to_vec()
}

#[test]
fn log_stays_bounded_across_checkpoint_cycles() {
    let guard = TempDir::new("oblidb-waltrunc-bounded").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    let mut db = oblidb::database_on(&spec, truncating_config()).unwrap();
    db.execute("CREATE TABLE t (k INT, v INT) CAPACITY 16").unwrap();

    // Steady state: each cycle updates the same single row many times,
    // then checkpoints. History grows without bound; live state doesn't.
    db.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    let mut log_lens = Vec::new();
    let mut base_lsns = Vec::new();
    for cycle in 0..6 {
        for i in 0..20 {
            db.execute(&format!("UPDATE t SET v = {} WHERE k = 1", cycle * 100 + i)).unwrap();
        }
        db.persist_to(&dir).unwrap();
        log_lens.push(db.wal_len());
        base_lsns.push(db.wal_base_lsn().unwrap());
    }
    // The compacted log holds the state dump (1 CREATE + 1 INSERT), not
    // the 20-update history of each cycle — bounded, and identical every
    // cycle because live state is identical.
    assert!(
        log_lens.iter().all(|&l| l == log_lens[0]),
        "truncated log must not grow with history: {log_lens:?}"
    );
    assert!(log_lens[0] <= 4, "compacted dump should be a handful of records: {log_lens:?}");
    // The checkpoint LSN keeps counting the full history monotonically.
    assert!(
        base_lsns.windows(2).all(|w| w[0] < w[1]),
        "base LSN must advance with every checkpoint: {base_lsns:?}"
    );

    // Un-truncated control: same workload, log keeps every record.
    let guard2 = TempDir::new("oblidb-waltrunc-control").unwrap();
    let dir2 = guard2.path().join("db");
    let spec2 = SubstrateSpec::Disk { dir: Some(dir2.clone()) };
    let plain = DbConfig { wal: Some(WalConfig::default()), ..DbConfig::default() };
    let mut control = oblidb::database_on(&spec2, plain).unwrap();
    control.execute("CREATE TABLE t (k INT, v INT) CAPACITY 16").unwrap();
    control.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    for cycle in 0..6 {
        for i in 0..20 {
            control.execute(&format!("UPDATE t SET v = {} WHERE k = 1", cycle * 100 + i)).unwrap();
        }
        control.persist_to(&dir2).unwrap();
    }
    assert!(
        control.wal_len() > 10 * db.wal_len(),
        "control log ({} records) should dwarf the truncated log ({})",
        control.wal_len(),
        db.wal_len()
    );
}

#[test]
fn truncated_store_reopens_with_identical_state() {
    let guard = TempDir::new("oblidb-waltrunc-reopen").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    let expected = {
        let mut db = oblidb::database_on(&spec, truncating_config()).unwrap();
        db.execute("CREATE TABLE t (k INT, v INT, s CHAR(6)) CAPACITY 32").unwrap();
        for i in 0..8 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {}, 'x{}')", i * 3, i)).unwrap();
        }
        db.persist_to(&dir).unwrap();
        // Mutate past the checkpoint too: these live only in the fresh
        // log until the next checkpoint.
        db.execute("UPDATE t SET v = -5 WHERE k >= 6").unwrap();
        db.execute("DELETE FROM t WHERE k = 0").unwrap();
        db.persist_to(&dir).unwrap();
        all_rows(&mut db)
    };
    let mut reopened = oblidb::database_open(&spec, truncating_config()).unwrap();
    assert_eq!(all_rows(&mut reopened), expected);
    // And the reopened engine keeps truncating.
    reopened.execute("INSERT INTO t VALUES (50, 1, 'y')").unwrap();
    reopened.persist_to(&dir).unwrap();
    let len_after = reopened.wal_len();
    drop(reopened);
    let mut again = oblidb::database_open(&spec, truncating_config()).unwrap();
    assert_eq!(again.wal_len(), len_after);
    assert_eq!(again.execute("SELECT * FROM t WHERE k = 50").unwrap().len(), 1);
}

#[test]
fn crash_after_truncating_checkpoint_recovers() {
    // Post-truncation crash: the fresh log holds dump + post-checkpoint
    // statements; recovery replays dump state, then the overhang.
    let guard = TempDir::new("oblidb-waltrunc-crash").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    {
        let mut db = oblidb::database_on(&spec, truncating_config()).unwrap();
        db.execute("CREATE TABLE t (k INT, v INT) CAPACITY 16").unwrap();
        for i in 0..5 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {i})")).unwrap();
        }
        db.persist_to(&dir).unwrap(); // truncates: log = compacted dump
        db.execute("INSERT INTO t VALUES (100, 100)").unwrap();
        db.execute("DELETE FROM t WHERE k = 1").unwrap();
        // Crash before the next checkpoint.
    }
    let mut recovered = oblidb::database_open(&spec, truncating_config()).unwrap();
    let rows = all_rows(&mut recovered);
    assert_eq!(rows.len(), 5, "4 surviving seeds + the post-checkpoint insert: {rows:?}");
    assert!(rows.contains(&vec![Value::Int(100), Value::Int(100)]));
    assert!(!rows.iter().any(|r| r[0] == Value::Int(1)), "deleted row resurrected");
}

#[test]
fn text_values_survive_dump_and_restore() {
    // The dump renders literals back to SQL: quotes must escape, floats
    // must round-trip, and the restored rows must compare equal.
    let guard = TempDir::new("oblidb-waltrunc-text").unwrap();
    let dir = guard.path().join("db");
    let spec = SubstrateSpec::Disk { dir: Some(dir.clone()) };
    let expected = {
        let mut db = oblidb::database_on(&spec, truncating_config()).unwrap();
        db.execute("CREATE TABLE t (k INT, f FLOAT, s CHAR(12)) CAPACITY 8").unwrap();
        db.execute("INSERT INTO t VALUES (1, 0.1, 'it''s here')").unwrap();
        db.execute("INSERT INTO t VALUES (2, 1e-7, 'semi;colon')").unwrap();
        db.execute("INSERT INTO t VALUES (3, -2.5e10, '')").unwrap();
        db.persist_to(&dir).unwrap(); // state now lives only in the dump
        all_rows(&mut db)
    };
    let mut reopened = oblidb::database_open(&spec, truncating_config()).unwrap();
    assert_eq!(all_rows(&mut reopened), expected);
}
